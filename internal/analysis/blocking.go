// Blocking-operation classifier, shared by the execblock and lockheld
// analyzers. One place decides what "can block this goroutine" means so
// the two analyzers cannot drift apart:
//
//   - channel send, channel receive, range over a channel
//   - select without a default clause (a select with default polls)
//   - time.Sleep
//   - sync.Mutex.Lock, sync.RWMutex.Lock/RLock, sync.WaitGroup.Wait,
//     sync.Cond.Wait, sync.Once.Do (the first caller runs f; every
//     other caller blocks behind it)
//   - net dials and listens (net.Dial, net.DialTimeout, net.Listen, …)
//   - network I/O methods: Read/Write/Accept/Close/ReadFrom/WriteTo on
//     any net type (net.Conn, net.TCPConn, net.Listener, …). Close is
//     included: it can block on linger/handshake teardown, and on
//     net.Pipe it synchronizes with the peer.
//   - wire.ReadFrame (a connection read in disguise)
//   - Runtime.Do / Runtime.Await (the live runtime's blocking bridges:
//     they wait for the protocol executor, so calling them FROM the
//     executor self-deadlocks)
//
// Non-blocking by design and deliberately absent: sync/atomic,
// Mutex.Unlock, Cond.Signal/Broadcast, WaitGroup.Add/Done, timer
// creation (time.AfterFunc/NewTimer return immediately), and `go`
// statements themselves.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockingNetFuncs are the package-level net functions that perform
// blocking dials or binds.
var blockingNetFuncs = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialIP": true, "DialTCP": true,
	"DialUDP": true, "DialUnix": true, "Listen": true, "ListenIP": true,
	"ListenTCP": true, "ListenUDP": true, "ListenUnix": true, "ListenPacket": true,
}

// blockingSyncMethods are the sync methods that wait.
var blockingSyncMethods = map[string]bool{
	"Lock": true, "RLock": true, "Wait": true, "Do": true,
}

// blockingNetMethods are the I/O methods of net types.
var blockingNetMethods = map[string]bool{
	"Read": true, "Write": true, "Accept": true, "Close": true,
	"ReadFrom": true, "WriteTo": true,
}

// BlockingOp reports whether the node is an operation that can block
// the calling goroutine, with a short description for diagnostics.
func BlockingOp(info *types.Info, n ast.Node) (desc string, ok bool) {
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send", true
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive", true
		}
	case *ast.SelectStmt:
		if selectHasDefault(n) {
			return "", false
		}
		return "blocking select", true
	case *ast.RangeStmt:
		if t := info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				return "range over channel", true
			}
		}
	case *ast.CallExpr:
		return blockingCall(info, n)
	}
	return "", false
}

// blockingCall classifies call expressions.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if path, name, qualified := QualifiedName(info, sel); qualified {
		switch {
		case path == "time" && name == "Sleep":
			return "time.Sleep", true
		case path == "net" && blockingNetFuncs[name]:
			return "net." + name, true
		case pathBase(path) == "wire" && name == "ReadFrame":
			return "wire.ReadFrame (connection read)", true
		}
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "sync":
		if blockingSyncMethods[name] {
			return "sync." + recvTypeName(fn) + "." + name, true
		}
	case "net":
		if blockingNetMethods[name] {
			return "net." + recvTypeName(fn) + "." + name, true
		}
	default:
		// The live runtime's blocking bridges: Do and Await park the
		// caller until the protocol executor serves it.
		if (name == "Do" || name == "Await") && recvTypeName(fn) == "Runtime" {
			return "Runtime." + name + " (waits on the protocol executor)", true
		}
	}
	return "", false
}

// recvTypeName returns the name of a method's receiver type,
// unwrapping the pointer.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// pathBase returns the last element of an import path.
func pathBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// CommOps returns the top-level communication operations of a select's
// clauses: the SendStmt or receive expression of each comm clause.
// Whether those block is the select's decision — a default clause makes
// the whole statement a poll — so traversals that classify blocking
// operations node-by-node must skip these and judge the SelectStmt
// itself.
func CommOps(sel *ast.SelectStmt) []ast.Node {
	var out []ast.Node
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			out = append(out, comm)
		case *ast.ExprStmt:
			out = append(out, comm.X)
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				out = append(out, r)
			}
		}
	}
	return out
}

// selectHasDefault reports whether a select statement has a default
// clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
