package landmarkdht

import (
	"landmarkdht/internal/landmark"
	"landmarkdht/internal/metric"
)

// Re-exported metric-space vocabulary. The implementation lives in
// internal packages; these aliases are the public names.

// Vector is a dense point in a real vector space.
type Vector = metric.Vector

// SparseVector is a high-dimensional sparse term vector (documents).
type SparseVector = metric.SparseVector

// PointSet is a finite set of points (images under Hausdorff).
type PointSet = metric.PointSet

// IDSet is a finite id set (tags, shingles) under Jaccard distance.
type IDSet = metric.IDSet

// Distance is a black-box metric distance function.
type Distance[T any] = metric.Distance[T]

// Space is a named metric space with an optional distance bound.
type Space[T any] = metric.Space[T]

// Meaner computes a centroid for k-means landmark selection.
type Meaner[T any] = landmark.Meaner[T]

// Distance functions and space constructors.
var (
	// L2 is the Euclidean distance.
	L2 = metric.L2
	// L1 is the Manhattan (Hamilton) distance.
	L1 = metric.L1
	// LInf is the Chebyshev distance.
	LInf = metric.LInf
	// Edit is the Levenshtein edit distance over strings.
	Edit = metric.Edit
	// CosineAngle is the document angle distance arccos(cos θ).
	CosineAngle = metric.CosineAngle
	// Jaccard is the set distance 1 − |A∩B|/|A∪B|.
	Jaccard = metric.Jaccard
	// NewIDSet builds a normalized id set.
	NewIDSet = metric.NewIDSet
	// DenseMean averages dense vectors (k-means centroids).
	DenseMean = landmark.DenseMean
	// SparseMean averages sparse term vectors.
	SparseMean = landmark.SparseMean
)

// EuclideanSpace returns a bounded L2 space over dim-dimensional
// vectors with coordinates in [lo, hi].
func EuclideanSpace(name string, dim int, lo, hi float64) Space[Vector] {
	return metric.EuclideanSpace(name, dim, lo, hi)
}

// EditSpace returns the string space under edit distance, bounded by
// the maximum string length in the dataset.
func EditSpace(name string, maxLen int) Space[string] {
	return metric.EditSpace(name, maxLen)
}

// CosineSpace returns the document space under the angle distance,
// bounded by π/2.
func CosineSpace(name string) Space[SparseVector] {
	return metric.CosineSpace(name)
}

// HausdorffSpace returns a point-set space under the Hausdorff
// distance with an L2 ground metric.
func HausdorffSpace(name string, dim int, lo, hi float64) Space[PointSet] {
	return metric.HausdorffSpace(name, dim, lo, hi)
}

// JaccardSpace returns the id-set space under Jaccard distance,
// bounded by 1.
func JaccardSpace(name string) Space[IDSet] {
	return metric.JaccardSpace(name)
}

// NewSparseVector builds a sparse vector from (term, weight) pairs.
func NewSparseVector(idx []uint32, val []float64) (SparseVector, error) {
	return metric.NewSparseVector(idx, val)
}

// Bound wraps an unbounded metric with the paper's d/(1+d) transform,
// yielding a metric bounded by 1 that preserves distance ordering.
func Bound[T any](s Space[T]) Space[T] { return metric.Bound(s) }
