package landmarkdht

import (
	"fmt"

	"landmarkdht/internal/metric"
)

// Expander enriches a query object using relevance feedback: the
// objects retrieved by an initial search round. This implements the
// paper's §6 future work #2 (automatic query expansion) as
// pseudo-relevance feedback.
type Expander[T any] func(q T, feedback []T) T

// Rocchio returns the classic Rocchio expander for term vectors:
// q' = α·q + β·centroid(feedback). With TF/IDF document vectors this
// pulls a short keyword query toward the vocabulary of its top-ranked
// documents, the standard recall/precision booster in centralized IR
// that the paper proposes to port to the distributed index.
func Rocchio(alpha, beta float64) Expander[SparseVector] {
	return func(q SparseVector, feedback []SparseVector) SparseVector {
		if len(feedback) == 0 {
			return q
		}
		centroid := SparseMean(feedback)
		acc := make(map[uint32]float64, q.NNZ()+centroid.NNZ())
		for i, idx := range q.Idx {
			acc[idx] += alpha * q.Val[i]
		}
		for i, idx := range centroid.Idx {
			acc[idx] += beta * centroid.Val[i]
		}
		outIdx := make([]uint32, 0, len(acc))
		outVal := make([]float64, 0, len(acc))
		//lint:allow maporder NewSparseVector canonicalizes by sorting on term index
		for idx, v := range acc {
			if v > 0 {
				outIdx = append(outIdx, idx)
				outVal = append(outVal, v)
			}
		}
		sv, err := metric.NewSparseVector(outIdx, outVal)
		if err != nil {
			return q // unreachable: weights are positive
		}
		return sv
	}
}

// SearchWithExpansion performs a two-round search with automatic query
// expansion: a first NearestSearch retrieves feedbackN candidates, the
// expander folds them into the query, and a second search runs with
// the expanded query. Results of both rounds are merged by object id
// (keeping each object's best distance **to the original query**) and
// the top k are returned. Stats aggregate both rounds.
func (ix *Index[T]) SearchWithExpansion(q T, k int, r float64, expand Expander[T], feedbackN int) ([]Match[T], SearchStats, error) {
	if expand == nil {
		return nil, SearchStats{}, fmt.Errorf("landmarkdht: nil expander")
	}
	if k <= 0 || feedbackN <= 0 {
		return nil, SearchStats{}, fmt.Errorf("landmarkdht: k and feedbackN must be positive")
	}
	first, stats, err := ix.NearestSearch(q, feedbackN, r)
	if err != nil {
		return nil, stats, err
	}
	feedback := make([]T, len(first))
	for i, m := range first {
		feedback[i] = m.Object
	}
	expanded := expand(q, feedback)
	second, stats2, err := ix.NearestSearch(expanded, k, r)
	aggAdd(&stats, stats2)
	if err != nil {
		return nil, stats, err
	}
	// Merge by id; distances are re-ranked against the ORIGINAL query
	// (expansion is only for retrieval, not for scoring).
	best := make(map[int]Match[T], len(first)+len(second))
	consider := func(m Match[T]) {
		d := ix.emb.Distance(q, m.Object)
		if prev, ok := best[m.ID]; !ok || d < prev.Distance {
			best[m.ID] = Match[T]{ID: m.ID, Object: m.Object, Distance: d}
		}
	}
	for _, m := range first {
		consider(m)
	}
	for _, m := range second {
		consider(m)
	}
	out := make([]Match[T], 0, len(best))
	//lint:allow maporder sortMatches totally orders the merged set (Distance, then ID)
	for _, m := range best {
		out = append(out, m)
	}
	sortMatches(out)
	if len(out) > k {
		out = out[:k]
	}
	return out, stats, nil
}

func sortMatches[T any](ms []Match[T]) {
	// Insertion sort: result sets are small (k-sized).
	for i := 1; i < len(ms); i++ {
		for j := i; j > 0; j-- {
			if ms[j].Distance < ms[j-1].Distance ||
				(ms[j].Distance == ms[j-1].Distance && ms[j].ID < ms[j-1].ID) {
				ms[j], ms[j-1] = ms[j-1], ms[j]
			} else {
				break
			}
		}
	}
}
