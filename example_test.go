package landmarkdht_test

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"landmarkdht"
)

// clusteredVectors builds a small deterministic dataset for the
// examples.
func clusteredVectors(n int) []landmarkdht.Vector {
	rng := rand.New(rand.NewSource(5))
	centers := []landmarkdht.Vector{{10, 10, 10, 10}, {60, 60, 60, 60}, {10, 60, 10, 60}}
	out := make([]landmarkdht.Vector, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		v := make(landmarkdht.Vector, 4)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*2
		}
		out[i] = v
	}
	return out
}

// Example shows the minimal end-to-end flow: build a simulated
// overlay, deploy an index, search.
func Example() {
	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 32, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	data := clusteredVectors(500)
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("example", 4, 0, 80),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 3, SampleSize: 200})
	if err != nil {
		log.Fatal(err)
	}
	matches, _, err := ix.RangeSearch(data[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("self-search matches:", len(matches) >= 1)
	fmt.Println("nearest is itself:", matches[0].ID == 0 && matches[0].Distance == 0)
	// Output:
	// self-search matches: true
	// nearest is itself: true
}

// ExampleIndex_NearestK finds exact nearest neighbors by iterative
// range expansion.
func ExampleIndex_NearestK() {
	p, _ := landmarkdht.New(landmarkdht.Options{Nodes: 32, Seed: 2})
	data := clusteredVectors(800)
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("knn-example", 4, 0, 80),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 3, SampleSize: 200})
	if err != nil {
		log.Fatal(err)
	}
	nn, _, err := ix.NearestK(data[42], 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("neighbors found:", len(nn))
	fmt.Println("closest is the query object:", nn[0].ID == 42)
	fmt.Println("distances ascend:", nn[0].Distance <= nn[1].Distance && nn[1].Distance <= nn[2].Distance)
	// Output:
	// neighbors found: 3
	// closest is the query object: true
	// distances ascend: true
}

// ExampleAddIndex_editDistance indexes strings under edit distance —
// a metric space with no coordinates, selected with the greedy
// max-min method (the paper's Algorithm 1).
func ExampleAddIndex_editDistance() {
	p, _ := landmarkdht.New(landmarkdht.Options{Nodes: 16, Seed: 3})
	words := []string{
		"monkey", "donkey", "monket", "mankey",
		"banana", "bandana", "cabana",
		"orange", "grange", "orangy",
	}
	ix, err := landmarkdht.AddIndex(p, landmarkdht.EditSpace("words", 16), words, nil,
		landmarkdht.IndexOptions{Landmarks: 2, SampleSize: 10})
	if err != nil {
		log.Fatal(err)
	}
	matches, _, err := ix.RangeSearch("monkey", 1)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range matches {
		fmt.Printf("%s (%.0f edits)\n", m.Object, m.Distance)
	}
	// Output:
	// monkey (0 edits)
	// donkey (1 edits)
	// monket (1 edits)
	// mankey (1 edits)
}

// ExamplePlatform_EnableLoadBalancing demonstrates §3.4 dynamic load
// migration flattening a skewed deployment.
func ExamplePlatform_EnableLoadBalancing() {
	p, _ := landmarkdht.New(landmarkdht.Options{Nodes: 24, Seed: 4})
	data := clusteredVectors(2000)
	_, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("lb-example", 4, 0, 80),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 3, SampleSize: 200})
	if err != nil {
		log.Fatal(err)
	}
	before := p.Loads()[0]
	if err := p.EnableLoadBalancing(landmarkdht.LBConfig{
		Delta: 0, ProbeLevel: 4, Period: 2 * time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	p.Run(2 * time.Minute)
	after := p.Loads()[0]
	migrations, _ := p.Migrations()
	fmt.Println("max load dropped:", after < before/2)
	fmt.Println("migrations happened:", migrations > 0)
	// Output:
	// max load dropped: true
	// migrations happened: true
}

// ExampleRocchio expands a short keyword query with pseudo-relevance
// feedback (the paper's §6 automatic query expansion).
func ExampleRocchio() {
	q, _ := landmarkdht.NewSparseVector([]uint32{1, 2}, []float64{1, 1})
	doc, _ := landmarkdht.NewSparseVector([]uint32{2, 3, 4}, []float64{2, 2, 2})
	expand := landmarkdht.Rocchio(1.0, 0.5)
	expanded := expand(q, []landmarkdht.SparseVector{doc})
	fmt.Println("query terms before:", q.NNZ())
	fmt.Println("query terms after:", expanded.NNZ())
	// Output:
	// query terms before: 2
	// query terms after: 4
}
