package landmarkdht

import (
	"math/rand"
	"testing"
)

// TestWireCodecEndToEnd runs the public API with real binary message
// encoding: result sets stay exact; reported distances may round up by
// one quantum of the index's maximum distance.
func TestWireCodecEndToEnd(t *testing.T) {
	p, err := New(Options{Nodes: 48, Seed: 1, WireCodec: true})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(1500, 8, 2)
	ix, err := AddIndex(p, EuclideanSpace("vecs", 8, -100, 200), data, DenseMean,
		IndexOptions{Landmarks: 4, SampleSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	quantum := ix.MaxDistance() / 65535 * 1.01
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		q := data[rng.Intn(len(data))]
		r := 5 + rng.Float64()*10
		matches, _, err := ix.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range data {
			if L2(q, v) <= r {
				want++
			}
		}
		if len(matches) != want {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(matches), want)
		}
		for _, m := range matches {
			exact := L2(q, m.Object)
			if m.Distance < exact-1e-9 || m.Distance-exact > quantum {
				t.Fatalf("distance %v vs exact %v (quantum %v)", m.Distance, exact, quantum)
			}
		}
	}
}
