package landmarkdht

import (
	"fmt"
	"math/rand"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/runtime"
	"landmarkdht/internal/runtime/livert"
	"landmarkdht/internal/sim"
	"landmarkdht/internal/wal"
)

// Options configures a Platform.
type Options struct {
	// Nodes is the overlay size (default 128).
	Nodes int
	// Seed makes the whole simulation deterministic (default 1).
	Seed int64
	// MeanRTT calibrates the synthetic latency model (default 180 ms,
	// the King dataset average the paper simulates).
	MeanRTT time.Duration
	// Successors is the Chord successor-list length (default 16).
	Successors int
	// DisablePNS turns off proximity neighbor selection.
	DisablePNS bool
	// WireCodec runs query/result messages through the real binary
	// codec (quantized 2-byte range bounds per the paper's size model)
	// instead of size accounting alone.
	WireCodec bool
	// LossRate drops each overlay message with this probability (fault
	// injection, deterministic per Seed; 0 disables).
	LossRate float64
	// Jitter adds a uniform random extra delay in [0, Jitter) to every
	// message.
	Jitter time.Duration
	// Faults is the full runtime-agnostic fault policy: message loss,
	// duplication, latency faults and timed partitions inject at the
	// overlay (identically on both runtimes); frame drops and
	// connection kills inject at the live transport. When set it
	// supersedes LossRate/Jitter (which remain as shorthands for
	// loss-and-jitter-only policies).
	Faults *FaultOptions
	// Retry configures reliable subquery/result delivery (ack, timeout,
	// bounded retransmission with successor failover). The zero value
	// keeps the paper's fire-and-forget behavior.
	Retry RetryConfig
	// Deadline, when positive, bounds every query's total time: on
	// expiry the query finishes immediately with whatever results have
	// arrived, marked incomplete (see SearchStats.Complete).
	Deadline time.Duration
	// Hedge configures subquery hedging: a subquery still unanswered
	// Hedge.Delay after shipping is re-sent to the owner's successor
	// replica. Requires Index.Replicate to be useful — without a
	// replica the hedge re-probes the same owner. See core.HedgeConfig.
	Hedge HedgeConfig
	// Batch coalesces query/result/ack messages bound for the same node
	// into one wire.Batch frame, paying the packet header once per frame
	// instead of once per message (DESIGN.md §13). The zero value
	// disables batching; set Batch.MaxDelay to enable it.
	Batch BatchOptions
	// MaxActiveQueries bounds concurrently active range queries
	// (admission control): past the cap, new queries finish immediately
	// as honest incompletes (Complete=false, the whole region
	// uncovered) and are counted in ReliabilityStats.AdmissionRejected.
	// Zero means unlimited.
	MaxActiveQueries int
	// Live runs the platform over the live concurrent runtime instead of
	// the discrete-event simulator: node inboxes are real goroutines and
	// connections, retry timers are real timers, and searches may be
	// issued from many goroutines concurrently. Call Close when done.
	Live bool
	// LiveLatencyScale multiplies the modeled network latency in live
	// mode (0, the default, delivers messages as fast as the machine
	// allows; 1 reproduces the latency model in real time).
	LiveLatencyScale float64
	// Executors shards per-node index work across this many executor
	// goroutines in live mode (protocol logic stays on one executor;
	// store scans and distance refinement fan out by node ID). Zero or
	// one keeps everything on the single protocol executor. Ignored in
	// simulated mode. Incompatible with EnableLoadBalancing.
	Executors int
	// MaxInbox bounds the live executor's delivery queue: deliveries
	// past the bound are shed (counted in
	// ReliabilityStats.TransportShed) instead of growing the queue
	// without limit. Zero means the default bound (8192); negative
	// means unbounded. Ignored in simulated mode.
	MaxInbox int
	// DataDir, when set, makes every node's store durable: mutations
	// journal to a per-node write-ahead log under this directory (with
	// periodic compacting snapshots), and a platform rebuilt over the
	// same directory recovers each node's region from disk. Empty (the
	// default) keeps the paper's in-memory stores. Snapshot stamps come
	// from the platform clock, so simulated runs stay deterministic.
	DataDir string
	// DataSync selects the journal fsync policy when DataDir is set.
	// The zero value is SyncAlways (an fsync per journal append —
	// maximum durability); SyncInterval trades a bounded window of
	// acknowledged-but-unflushed records for throughput.
	DataSync DataSyncPolicy
}

// DataSyncPolicy re-exports the journal fsync policy (wal.SyncPolicy).
type DataSyncPolicy = wal.SyncPolicy

// Journal fsync policies for Options.DataSync.
const (
	// SyncAlways flushes after every journal append.
	SyncAlways = wal.SyncAlways
	// SyncInterval flushes every 64 appends (and on close/compaction).
	SyncInterval = wal.SyncInterval
	// SyncNever leaves flushing to the OS.
	SyncNever = wal.SyncNever
)

// RetryConfig re-exports the reliable-delivery knobs.
type RetryConfig = core.RetryConfig

// HedgeConfig re-exports the subquery-hedging knobs.
type HedgeConfig = core.HedgeConfig

// BatchOptions re-exports the destination-batching knobs.
type BatchOptions = chord.BatchConfig

// FaultOptions re-exports the runtime-agnostic fault policy.
type FaultOptions = runtime.FaultPolicy

// PartitionSpec re-exports the timed partition window.
type PartitionSpec = runtime.PartitionWindow

func (o *Options) fillDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MeanRTT <= 0 {
		o.MeanRTT = 180 * time.Millisecond
	}
	if o.Successors <= 0 {
		o.Successors = 16
	}
}

// Platform is a peer-to-peer deployment of the landmark index
// architecture. It hosts any number of Index instances over one
// overlay.
//
// A simulated Platform (the default) must be used from a single
// goroutine: the discrete-event engine is not concurrent — run many
// platforms in parallel instead. A live Platform (Options.Live) runs
// the protocol on its own executor goroutine and serves searches from
// any number of client goroutines concurrently; call Close when done.
type Platform struct {
	eng  *sim.Engine     // simulated mode (nil in live mode)
	live *livert.Runtime // live mode (nil in simulated mode)
	sys  *core.System
	rng  *rand.Rand
	opts Options
	plan *chord.FaultPlan // overlay fault plan (nil when no faults)
}

// New builds a stabilized overlay of opts.Nodes nodes.
func New(opts Options) (*Platform, error) {
	opts.fillDefaults()
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{
		N: opts.Nodes, MeanRTT: opts.MeanRTT, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Chord.NumSuccessors = opts.Successors
	cfg.Chord.PNS = !opts.DisablePNS
	cfg.EncodeWire = opts.WireCodec
	if opts.Faults != nil && !opts.Faults.Zero() {
		cfg.Chord.Faults = chord.FaultPlanFromPolicy(opts.Faults)
	} else if opts.LossRate > 0 || opts.Jitter > 0 {
		cfg.Chord.Faults = chord.NewFaultPlan().DropAll(opts.LossRate).Jitter(opts.Jitter)
	}
	cfg.Chord.Batch = opts.Batch
	cfg.Retry = opts.Retry
	cfg.Deadline = opts.Deadline
	cfg.Hedge = opts.Hedge
	cfg.MaxActiveQueries = opts.MaxActiveQueries
	p := &Platform{opts: opts, plan: cfg.Chord.Faults}
	if opts.Live {
		p.live = livert.New(livert.Config{
			Seed: opts.Seed, LatencyScale: opts.LiveLatencyScale, Faults: opts.Faults,
			Executors: opts.Executors, MaxInbox: opts.MaxInbox,
		})
	} else {
		p.eng = sim.NewEngine(opts.Seed)
	}
	if opts.DataDir != "" {
		// Compaction stamps come from the platform clock (virtual in
		// simulated mode) so durable runs replay deterministically.
		now := func() int64 {
			if p.live != nil {
				return int64(p.live.Now())
			}
			return int64(p.eng.Now())
		}
		cfg.Store = core.WALStoreFactory(opts.DataDir, core.WALStoreOptions{
			Sync: opts.DataSync, Now: now,
		})
	}
	if opts.Live {
		p.sys = core.NewSystemRuntime(p.live, p.live, model, cfg)
	} else {
		p.sys = core.NewSystem(p.eng, model, cfg)
	}
	p.rng = rand.New(rand.NewSource(opts.Seed + 99))
	if err := p.protocol(func() error {
		used := map[chord.ID]bool{}
		for i := 0; i < opts.Nodes; i++ {
			id := chord.ID(p.rng.Uint64())
			for used[id] {
				id = chord.ID(p.rng.Uint64())
			}
			used[id] = true
			if _, err := p.sys.AddNode(id, i); err != nil {
				return err
			}
		}
		p.sys.Stabilize()
		return nil
	}); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// Close releases the platform's resources. In live mode it stops the
// executor, node inbox goroutines and connections; on a simulated
// platform it is a no-op. The platform is unusable afterwards.
func (p *Platform) Close() {
	if p.live != nil {
		p.live.Close()
	}
}

// protocol runs fn on the platform's protocol execution context:
// synchronously on a simulated platform (the caller's goroutine is the
// context), via the executor on a live one. Every touch of overlay or
// system state goes through it.
func (p *Platform) protocol(fn func() error) error {
	if p.live == nil {
		return fn()
	}
	var err error
	if derr := p.live.Do(func() { err = fn() }); derr != nil {
		return derr
	}
	return err
}

// Nodes returns the current overlay size.
func (p *Platform) Nodes() int {
	var n int
	p.protocol(func() error { n = p.sys.Network().Size(); return nil })
	return n
}

// Loads returns per-node index-entry counts in descending order.
func (p *Platform) Loads() []int {
	var loads []int
	p.protocol(func() error { loads = p.sys.Loads(); return nil })
	return loads
}

// Indexes lists the deployed index scheme names.
func (p *Platform) Indexes() []string {
	var names []string
	p.protocol(func() error { names = p.sys.IndexNames(); return nil })
	return names
}

// LBConfig re-exports the §3.4 dynamic-load-migration knobs.
type LBConfig = core.LBConfig

// EnableLoadBalancing starts periodic load probing and migration.
func (p *Platform) EnableLoadBalancing(cfg LBConfig) error {
	return p.protocol(func() error { return p.sys.EnableLoadBalancing(cfg) })
}

// DisableLoadBalancing stops probing.
func (p *Platform) DisableLoadBalancing() {
	p.protocol(func() error { p.sys.DisableLoadBalancing(); return nil })
}

// Migrations reports completed and aborted load migrations.
func (p *Platform) Migrations() (done, aborted int) {
	p.protocol(func() error { done, aborted = p.sys.LBStats(); return nil })
	return done, aborted
}

// Run lets d of platform time pass (useful to let load balancing settle
// between searches): simulated time on a simulated platform, real time
// on a live one.
func (p *Platform) Run(d time.Duration) {
	if p.live != nil {
		p.live.Sleep(d)
		return
	}
	p.eng.RunFor(d)
}

// Crash abruptly removes n random nodes (failure injection): in-flight
// messages from the victims are lost with them, routing state is
// patched around each gap, and replicated indexes are repaired onto
// their new successor sets (see Index.Replicate).
func (p *Platform) Crash(n int) int {
	crashed := 0
	p.protocol(func() error {
		for i := 0; i < n; i++ {
			nodes := p.sys.Nodes()
			if len(nodes) <= 2 {
				break
			}
			victim := nodes[p.rng.Intn(len(nodes))]
			if err := p.sys.CrashNode(victim.ID()); err != nil {
				continue
			}
			crashed++
		}
		return nil
	})
	return crashed
}

// Join adds n new nodes to the running overlay (churn injection, the
// counterpart of Crash): each newcomer joins with a random identifier,
// routing tables around it are refreshed, and replicated indexes are
// repaired so it takes over the primary/replica copies for its arc. It
// returns how many nodes actually joined.
func (p *Platform) Join(n int) int {
	joined := 0
	p.protocol(func() error {
		for i := 0; i < n; i++ {
			id := chord.ID(p.rng.Uint64())
			if _, err := p.sys.JoinNode(id, p.rng.Intn(p.opts.Nodes)); err != nil {
				continue
			}
			joined++
		}
		return nil
	})
	return joined
}

// ReliabilityStats summarizes the fault-injection and reliable-delivery
// counters accumulated since the platform started.
type ReliabilityStats struct {
	// Dropped counts subqueries or results lost for good (fire-and-
	// forget losses, exhausted retries, deadline expiries).
	Dropped int
	// RetriesIssued counts retransmissions sent by the reliability
	// layer; Recovered counts deliveries that succeeded on one.
	RetriesIssued int
	Recovered     int
	// Hedges counts hedged subqueries: still-unanswered subqueries
	// re-sent to the owner's successor replica after Options.Hedge's
	// delay.
	Hedges int
	// AdmissionRejected counts queries refused at admission because
	// Options.MaxActiveQueries concurrent queries were already running;
	// each rejection produced an honest incomplete result.
	AdmissionRejected int
	// TransportShed counts deliveries dropped by the bounded transport
	// queue (Options.MaxInbox in live mode, the per-link send queue on
	// a deployed Node). Always zero on a simulated platform.
	TransportShed int64
	// QueueDepth is the transport delivery queue's depth at snapshot
	// time — an instantaneous saturation gauge, not a counter.
	QueueDepth int
	// Reconnects counts transport link re-dials (deployed nodes only).
	Reconnects int64
	// ReplicaRepairs counts replica-region bulk streams installed on a
	// deployed Node (anti-entropy repairs and initial syncs);
	// RepairChunks counts the stream chunks received. RepairFallback
	// counts repairs that fell back to point-wise transfer — by
	// construction always zero (the soak asserts it), kept as a counter
	// so a future regression is observable rather than silent. All zero
	// on simulated and in-process platforms.
	ReplicaRepairs int64
	RepairChunks   int64
	RepairFallback int64
}

// Reliability returns the platform's loss/retry counters.
func (p *Platform) Reliability() ReliabilityStats {
	var rs ReliabilityStats
	p.protocol(func() error {
		rs = ReliabilityStats{
			Dropped:           p.sys.DroppedSubqueries,
			RetriesIssued:     p.sys.RetriesIssued,
			Recovered:         p.sys.RecoveredSubqueries,
			Hedges:            p.sys.HedgesIssued,
			AdmissionRejected: p.sys.AdmissionRejected,
		}
		return nil
	})
	if p.live != nil {
		rs.QueueDepth, rs.TransportShed = p.live.QueueStats()
	}
	return rs
}

// FaultStats counts the faults the platform injected, at both layers.
type FaultStats struct {
	// MessagesDropped / MessagesDuplicated count overlay-level injected
	// losses (including partition casualties) and duplications.
	MessagesDropped    int64
	MessagesDuplicated int64
	// FramesDropped / ConnsKilled count live-transport faults (always
	// zero on a simulated platform, which has no transport below the
	// overlay).
	FramesDropped int64
	ConnsKilled   int64
}

// Faults returns the cumulative injected-fault counters.
func (p *Platform) Faults() FaultStats {
	var fs FaultStats
	p.protocol(func() error {
		if p.plan != nil {
			fs.MessagesDropped = p.plan.TotalDropped()
			fs.MessagesDuplicated = p.plan.Duplicated
		}
		return nil
	})
	if p.live != nil {
		ls := p.live.FaultStats()
		fs.FramesDropped = ls.FramesDropped
		fs.ConnsKilled = ls.ConnsKilled
	}
	return fs
}

// DurabilityStats describes the durable-store layer: what recovery
// found when the platform's stores opened, how their journals have
// evolved, and what bulk region transfer has saved over point-wise
// republication. All zero when Options.DataDir is unset (except the
// transfer counters, which accrue on any platform that migrates or
// repairs regions).
type DurabilityStats struct {
	// DurableNodes is how many live nodes run a durable store.
	DurableNodes int
	// RecordsReplayed / SnapshotRecords are summed over nodes: journal
	// records and snapshot records recovered when their stores opened.
	RecordsReplayed int
	SnapshotRecords int
	// Compactions counts snapshot compactions performed since open;
	// LogBytes is the summed current journal size.
	Compactions int
	LogBytes    int64
	// SnapshotStamp is the newest compaction stamp across nodes (the
	// platform clock at that compaction; 0 if never compacted).
	SnapshotStamp int64
	// Transfers is the bulk region-transfer accounting: actual stream
	// cost vs the point-wise counterfactual (see core.TransferStats).
	Transfers TransferStats
}

// TransferStats re-exports the bulk-transfer accounting.
type TransferStats = core.TransferStats

// Durability returns recovery and bulk-transfer statistics.
func (p *Platform) Durability() DurabilityStats {
	var ds DurabilityStats
	p.protocol(func() error {
		durable, agg := p.sys.RecoverySummary()
		ds = DurabilityStats{
			DurableNodes:    durable,
			RecordsReplayed: agg.RecordsReplayed,
			SnapshotRecords: agg.SnapshotRecords,
			Compactions:     agg.Compactions,
			LogBytes:        agg.LogBytes,
			SnapshotStamp:   agg.SnapshotStamp,
			Transfers:       p.sys.TransferStats(),
		}
		return nil
	})
	return ds
}

// Traffic summarizes overlay traffic since the platform started.
type Traffic struct {
	Messages int64
	Bytes    int64
	// Frames counts wire frames shipped: with destination batching off
	// it equals Messages; with batching on it is smaller, because
	// coalesced messages share one frame.
	Frames int64
}

// Traffic returns cumulative message and byte counts.
func (p *Platform) Traffic() Traffic {
	var out Traffic
	p.protocol(func() error {
		tr := p.sys.Network().Traffic()
		out.Messages, out.Bytes = tr.Total()
		out.Frames = tr.Frames
		return nil
	})
	return out
}

// randomNode picks a live node as a query/publish source.
func (p *Platform) randomNode() chord.ID {
	nodes := p.sys.Nodes()
	return nodes[p.rng.Intn(len(nodes))].ID()
}

// drive runs the engine until done reports true, extending the clock
// in bounded steps so background timers (load balancing) cannot stall
// completion detection.
func (p *Platform) drive(done func() bool) error {
	if done() {
		return nil
	}
	deadline := p.eng.Now()
	for tries := 0; tries < 600; tries++ {
		deadline += time.Second
		p.eng.RunUntil(deadline)
		if done() {
			return nil
		}
	}
	return fmt.Errorf("landmarkdht: operation did not complete within 10 simulated minutes")
}
