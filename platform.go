package landmarkdht

import (
	"fmt"
	"math/rand"
	"time"

	"landmarkdht/internal/chord"
	"landmarkdht/internal/core"
	"landmarkdht/internal/netmodel"
	"landmarkdht/internal/sim"
)

// Options configures a Platform.
type Options struct {
	// Nodes is the overlay size (default 128).
	Nodes int
	// Seed makes the whole simulation deterministic (default 1).
	Seed int64
	// MeanRTT calibrates the synthetic latency model (default 180 ms,
	// the King dataset average the paper simulates).
	MeanRTT time.Duration
	// Successors is the Chord successor-list length (default 16).
	Successors int
	// DisablePNS turns off proximity neighbor selection.
	DisablePNS bool
	// WireCodec runs query/result messages through the real binary
	// codec (quantized 2-byte range bounds per the paper's size model)
	// instead of size accounting alone.
	WireCodec bool
	// LossRate drops each overlay message with this probability (fault
	// injection, deterministic per Seed; 0 disables).
	LossRate float64
	// Jitter adds a uniform random extra delay in [0, Jitter) to every
	// message.
	Jitter time.Duration
	// Retry configures reliable subquery/result delivery (ack, timeout,
	// bounded retransmission with successor failover). The zero value
	// keeps the paper's fire-and-forget behavior.
	Retry RetryConfig
}

// RetryConfig re-exports the reliable-delivery knobs.
type RetryConfig = core.RetryConfig

func (o *Options) fillDefaults() {
	if o.Nodes <= 0 {
		o.Nodes = 128
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.MeanRTT <= 0 {
		o.MeanRTT = 180 * time.Millisecond
	}
	if o.Successors <= 0 {
		o.Successors = 16
	}
}

// Platform is a simulated peer-to-peer deployment of the landmark
// index architecture. It hosts any number of Index instances over one
// overlay. A Platform (and its indexes) must be used from a single
// goroutine: the discrete-event engine is not concurrent — run many
// platforms in parallel instead.
type Platform struct {
	eng  *sim.Engine
	sys  *core.System
	rng  *rand.Rand
	opts Options
}

// New builds a stabilized overlay of opts.Nodes nodes.
func New(opts Options) (*Platform, error) {
	opts.fillDefaults()
	eng := sim.NewEngine(opts.Seed)
	model, err := netmodel.NewSyntheticKing(netmodel.KingConfig{
		N: opts.Nodes, MeanRTT: opts.MeanRTT, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Chord.NumSuccessors = opts.Successors
	cfg.Chord.PNS = !opts.DisablePNS
	cfg.EncodeWire = opts.WireCodec
	if opts.LossRate > 0 || opts.Jitter > 0 {
		cfg.Chord.Faults = chord.NewFaultPlan().DropAll(opts.LossRate).Jitter(opts.Jitter)
	}
	cfg.Retry = opts.Retry
	sys := core.NewSystem(eng, model, cfg)
	rng := rand.New(rand.NewSource(opts.Seed + 99))
	used := map[chord.ID]bool{}
	for i := 0; i < opts.Nodes; i++ {
		id := chord.ID(rng.Uint64())
		for used[id] {
			id = chord.ID(rng.Uint64())
		}
		used[id] = true
		if _, err := sys.AddNode(id, i); err != nil {
			return nil, err
		}
	}
	sys.Stabilize()
	return &Platform{eng: eng, sys: sys, rng: rng, opts: opts}, nil
}

// Nodes returns the current overlay size.
func (p *Platform) Nodes() int { return p.sys.Network().Size() }

// Loads returns per-node index-entry counts in descending order.
func (p *Platform) Loads() []int { return p.sys.Loads() }

// Indexes lists the deployed index scheme names.
func (p *Platform) Indexes() []string { return p.sys.IndexNames() }

// LBConfig re-exports the §3.4 dynamic-load-migration knobs.
type LBConfig = core.LBConfig

// EnableLoadBalancing starts periodic load probing and migration.
func (p *Platform) EnableLoadBalancing(cfg LBConfig) error {
	return p.sys.EnableLoadBalancing(cfg)
}

// DisableLoadBalancing stops probing.
func (p *Platform) DisableLoadBalancing() { p.sys.DisableLoadBalancing() }

// Migrations reports completed and aborted load migrations.
func (p *Platform) Migrations() (done, aborted int) { return p.sys.LBStats() }

// Run advances the simulation by d of simulated time (useful to let
// load balancing settle between searches).
func (p *Platform) Run(d time.Duration) { p.eng.RunFor(d) }

// Crash abruptly removes n random nodes (failure injection): in-flight
// messages from the victims are lost with them, routing state is
// patched around each gap, and replicated indexes are repaired onto
// their new successor sets (see Index.Replicate).
func (p *Platform) Crash(n int) int {
	crashed := 0
	for i := 0; i < n; i++ {
		nodes := p.sys.Nodes()
		if len(nodes) <= 2 {
			break
		}
		victim := nodes[p.rng.Intn(len(nodes))]
		if err := p.sys.CrashNode(victim.ID()); err != nil {
			continue
		}
		crashed++
	}
	return crashed
}

// ReliabilityStats summarizes the fault-injection and reliable-delivery
// counters accumulated since the platform started.
type ReliabilityStats struct {
	// Dropped counts subqueries or results lost for good (fire-and-
	// forget losses, exhausted retries).
	Dropped int
	// RetriesIssued counts retransmissions sent by the reliability
	// layer; Recovered counts deliveries that succeeded on one.
	RetriesIssued int
	Recovered     int
}

// Reliability returns the platform's loss/retry counters.
func (p *Platform) Reliability() ReliabilityStats {
	return ReliabilityStats{
		Dropped:       p.sys.DroppedSubqueries,
		RetriesIssued: p.sys.RetriesIssued,
		Recovered:     p.sys.RecoveredSubqueries,
	}
}

// Traffic summarizes overlay traffic since the platform started.
type Traffic struct {
	Messages int64
	Bytes    int64
}

// Traffic returns cumulative message and byte counts.
func (p *Platform) Traffic() Traffic {
	msgs, bytes := func() (int64, int64) {
		tr := p.sys.Network().Traffic()
		return tr.Total()
	}()
	return Traffic{Messages: msgs, Bytes: bytes}
}

// randomNode picks a live node as a query/publish source.
func (p *Platform) randomNode() chord.ID {
	nodes := p.sys.Nodes()
	return nodes[p.rng.Intn(len(nodes))].ID()
}

// drive runs the engine until done reports true, extending the clock
// in bounded steps so background timers (load balancing) cannot stall
// completion detection.
func (p *Platform) drive(done func() bool) error {
	if done() {
		return nil
	}
	deadline := p.eng.Now()
	for tries := 0; tries < 600; tries++ {
		deadline += time.Second
		p.eng.RunUntil(deadline)
		if done() {
			return nil
		}
	}
	return fmt.Errorf("landmarkdht: operation did not complete within 10 simulated minutes")
}
