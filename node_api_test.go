package landmarkdht_test

import (
	"math/rand"
	"testing"
	"time"

	lm "landmarkdht"
)

// TestNodeAPI boots a 2-node TCP ring through the public NodeOptions
// surface and checks a complete query against the other node's view.
func TestNodeAPI(t *testing.T) {
	opts := lm.NodeOptions{
		Listen: "127.0.0.1:0", Seed: 21, Metric: "euclid",
		Objects: 256, Dim: 3, Landmarks: 4,
		GossipPeriod: 100 * time.Millisecond,
	}
	a, err := lm.StartNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	opts.Join = []string{a.Addr()}
	b, err := lm.StartNode(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	c, err := lm.DialNode(b.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := c.Info(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if len(info.Members) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never converged: %d members", len(info.Members))
		}
		time.Sleep(20 * time.Millisecond)
	}

	rng := rand.New(rand.NewSource(1))
	q := lm.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	fromA, err := a.QueryVector(q, 0.4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	fromB, err := b.QueryVector(q, 0.4, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !fromA.Complete || !fromB.Complete {
		t.Fatalf("incomplete on a healthy ring: a=%v b=%v", fromA.Complete, fromB.Complete)
	}
	if len(fromA.Entries) != len(fromB.Entries) {
		t.Fatalf("nodes disagree: %d vs %d entries", len(fromA.Entries), len(fromB.Entries))
	}
	for i := range fromA.Entries {
		if fromA.Entries[i].Obj != fromB.Entries[i].Obj {
			t.Fatalf("entry %d: %d vs %d", i, fromA.Entries[i].Obj, fromB.Entries[i].Obj)
		}
	}
}
