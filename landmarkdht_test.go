package landmarkdht

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

func testData(n, dim int, seed int64) []Vector {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]Vector, 4)
	for i := range centers {
		c := make(Vector, dim)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	out := make([]Vector, n)
	for i := range out {
		c := centers[rng.Intn(4)]
		v := make(Vector, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*5
		}
		out[i] = v
	}
	return out
}

func buildIndex(t *testing.T, n int) (*Platform, *Index[Vector], []Vector) {
	t.Helper()
	p, err := New(Options{Nodes: 48, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := testData(n, 8, 2)
	ix, err := AddIndex(p, EuclideanSpace("vecs", 8, -100, 200), data, DenseMean,
		IndexOptions{Landmarks: 4, SampleSize: 300})
	if err != nil {
		t.Fatal(err)
	}
	return p, ix, data
}

func TestNewPlatform(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes() != 128 {
		t.Fatalf("default nodes = %d", p.Nodes())
	}
	if len(p.Indexes()) != 0 {
		t.Fatal("fresh platform has indexes")
	}
}

func TestAddIndexValidation(t *testing.T) {
	p, _ := New(Options{Nodes: 8})
	if _, err := AddIndex(p, EuclideanSpace("x", 2, 0, 1), nil, DenseMean, IndexOptions{}); err == nil {
		t.Fatal("expected error for empty dataset")
	}
	bad := Space[Vector]{Name: "", Dist: L2}
	if _, err := AddIndex(p, bad, testData(10, 2, 1), DenseMean, IndexOptions{}); err == nil {
		t.Fatal("expected error for invalid space")
	}
	if _, err := AddIndex(p, EuclideanSpace("x", 8, 0, 1), testData(3, 8, 1), DenseMean,
		IndexOptions{Landmarks: 10}); err == nil {
		t.Fatal("expected error for landmarks > objects")
	}
	if _, err := AddIndex(p, EuclideanSpace("x", 8, 0, 100), testData(50, 8, 1), nil,
		IndexOptions{Selection: KMeansSelection}); err == nil {
		t.Fatal("expected error for kmeans without meaner")
	}
	if _, err := AddIndex(p, EuclideanSpace("x", 8, 0, 100), testData(50, 8, 1), nil,
		IndexOptions{Selection: "bogus"}); err == nil {
		t.Fatal("expected error for unknown selection")
	}
}

func TestRangeSearchExact(t *testing.T) {
	_, ix, data := buildIndex(t, 1500)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		q := data[rng.Intn(len(data))]
		r := 5 + rng.Float64()*10
		matches, stats, err := ix.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force.
		want := 0
		for _, v := range data {
			if L2(q, v) <= r {
				want++
			}
		}
		if len(matches) != want {
			t.Fatalf("trial %d: got %d matches, want %d", trial, len(matches), want)
		}
		for i, m := range matches {
			if m.Distance > r+1e-9 {
				t.Fatalf("match beyond range: %v > %v", m.Distance, r)
			}
			if i > 0 && m.Distance < matches[i-1].Distance {
				t.Fatal("matches not sorted")
			}
			if L2(q, m.Object) != m.Distance {
				t.Fatal("reported distance mismatch")
			}
		}
		if stats.MaxLatency < stats.ResponseTime {
			t.Fatal("stats inconsistent")
		}
	}
}

func TestNearestSearch(t *testing.T) {
	_, ix, data := buildIndex(t, 1500)
	q := data[7]
	matches, stats, err := ix.NearestSearch(q, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 10 {
		t.Fatalf("got %d matches", len(matches))
	}
	if matches[0].Distance != 0 {
		t.Fatalf("nearest to a dataset point should be itself, got %v", matches[0].Distance)
	}
	if stats.IndexNodes < 1 || stats.Candidates < 10 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestNearestKExact(t *testing.T) {
	_, ix, data := buildIndex(t, 1200)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		q := data[rng.Intn(len(data))]
		matches, _, err := ix.NearestK(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 5 {
			t.Fatalf("got %d", len(matches))
		}
		// Brute-force the true 5 nearest distances.
		ds := make([]float64, len(data))
		for i, v := range data {
			ds[i] = L2(q, v)
		}
		sort.Float64s(ds)
		for i, m := range matches {
			if m.Distance != ds[i] {
				t.Fatalf("rank %d: got distance %v, want %v", i, m.Distance, ds[i])
			}
		}
	}
}

func TestInsertThenSearch(t *testing.T) {
	_, ix, _ := buildIndex(t, 400)
	novel := make(Vector, 8)
	for i := range novel {
		novel[i] = 160 // outside the clusters but inside bounds
	}
	id, err := ix.Insert(novel)
	if err != nil {
		t.Fatal(err)
	}
	if id != 400 {
		t.Fatalf("id = %d", id)
	}
	matches, _, err := ix.RangeSearch(novel, 1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range matches {
		if m.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatal("inserted object not found")
	}
	if ix.Len() != 401 {
		t.Fatalf("len = %d", ix.Len())
	}
}

func TestMultipleIndexesOnePlatform(t *testing.T) {
	p, err := New(Options{Nodes: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	vecs := testData(300, 4, 3)
	ix1, err := AddIndex(p, EuclideanSpace("vectors", 4, -100, 200), vecs, DenseMean,
		IndexOptions{Landmarks: 3, SampleSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"GATTACA", "GATTACC", "CATTACA", "TTTTTTT", "AAAAAAA", "GGGGGGG", "GATCACA", "AATTACA"}
	ix2, err := AddIndex(p, EditSpace("strings", 8), words, nil,
		IndexOptions{Landmarks: 2, SampleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Indexes(); len(got) != 2 {
		t.Fatalf("indexes = %v", got)
	}
	if _, _, err := ix1.RangeSearch(vecs[0], 10); err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix2.RangeSearch("GATTACA", 1)
	if err != nil {
		t.Fatal(err)
	}
	var found []string
	for _, m := range matches {
		found = append(found, m.Object)
	}
	// Edit distance <= 1 from GATTACA: itself, GATTACC, CATTACA, GATCACA(2? G-A-T-C-A-C-A vs G-A-T-T-A-C-A: sub at pos 4 => 1), AATTACA (1).
	if len(found) < 4 {
		t.Fatalf("edit-distance search found %v", found)
	}
	for _, m := range matches {
		if Edit("GATTACA", m.Object) > 1 {
			t.Fatalf("false positive %q", m.Object)
		}
	}
}

func TestLoadBalancingAPI(t *testing.T) {
	p, ix, data := buildIndex(t, 2000)
	loadsBefore := p.Loads()
	if err := p.EnableLoadBalancing(LBConfig{Delta: 0, ProbeLevel: 3, Period: 2 * time.Second}); err != nil {
		t.Fatal(err)
	}
	if err := p.EnableLoadBalancing(LBConfig{}); err == nil {
		t.Fatal("expected error enabling twice")
	}
	p.Run(2 * time.Minute)
	done, _ := p.Migrations()
	if done == 0 {
		t.Fatal("no migrations on skewed data")
	}
	loadsAfter := p.Loads()
	if loadsAfter[0] > loadsBefore[0] {
		t.Fatalf("max load grew: %d -> %d", loadsBefore[0], loadsAfter[0])
	}
	p.DisableLoadBalancing()
	// Searching still works and is exact after the system settles.
	p.Run(time.Minute)
	q := data[3]
	matches, _, err := ix.RangeSearch(q, 8)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range data {
		if L2(q, v) <= 8 {
			want++
		}
	}
	if len(matches) != want {
		t.Fatalf("post-LB search: got %d, want %d", len(matches), want)
	}
}

func TestTrafficAccounting(t *testing.T) {
	p, ix, data := buildIndex(t, 300)
	before := p.Traffic()
	if _, _, err := ix.RangeSearch(data[0], 10); err != nil {
		t.Fatal(err)
	}
	after := p.Traffic()
	if after.Messages <= before.Messages || after.Bytes <= before.Bytes {
		t.Fatal("traffic not recorded")
	}
}

func TestNearestKValidation(t *testing.T) {
	_, ix, _ := buildIndex(t, 100)
	if _, _, err := ix.NearestK(ix.Object(0), 0); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, _, err := ix.NearestSearch(ix.Object(0), 0, 1); err == nil {
		t.Fatal("expected error for k=0")
	}
}

func TestBoundaryFromSampleUnboundedMetric(t *testing.T) {
	p, _ := New(Options{Nodes: 16, Seed: 4})
	data := testData(200, 4, 9)
	unbounded := Space[Vector]{Name: "raw", Dist: L2}
	ix, err := AddIndex(p, unbounded, data, DenseMean,
		IndexOptions{Landmarks: 3, SampleSize: 100, BoundaryFromSample: true})
	if err != nil {
		t.Fatal(err)
	}
	if ix.MaxDistance() <= 0 {
		t.Fatal("no max distance derived from sample")
	}
	if _, _, err := ix.RangeSearch(data[0], 5); err != nil {
		t.Fatal(err)
	}
	// Without the sample boundary the same space must be rejected.
	if _, err := AddIndex(p, Space[Vector]{Name: "raw2", Dist: L2}, data, DenseMean,
		IndexOptions{Landmarks: 3}); err == nil {
		t.Fatal("expected error for unbounded metric without sample boundary")
	}
}

func TestHausdorffIndex(t *testing.T) {
	p, _ := New(Options{Nodes: 16, Seed: 6})
	rng := rand.New(rand.NewSource(7))
	shapes := make([]PointSet, 60)
	for i := range shapes {
		ps := make(PointSet, 3+rng.Intn(3))
		cx, cy := rng.Float64(), rng.Float64()
		for j := range ps {
			ps[j] = Vector{cx + rng.Float64()*0.05, cy + rng.Float64()*0.05}
		}
		shapes[i] = ps
	}
	ix, err := AddIndex(p, HausdorffSpace("shapes", 2, 0, 1.1), shapes, nil,
		IndexOptions{Landmarks: 3, SampleSize: 60})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.RangeSearch(shapes[0], 0.06)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 || matches[0].Distance != 0 {
		t.Fatalf("self-search failed: %v", matches)
	}
}

func TestRangeSearchTraced(t *testing.T) {
	_, ix, data := buildIndex(t, 800)
	matches, stats, trace, err := ix.RangeSearchTraced(data[0], 12)
	if err != nil {
		t.Fatal(err)
	}
	if trace == nil || len(trace.Events) == 0 {
		t.Fatal("no trace")
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if len(trace.Nodes()) < stats.IndexNodes {
		t.Fatalf("trace covers %d nodes, stats say %d answered", len(trace.Nodes()), stats.IndexNodes)
	}
}

func TestJaccardIndex(t *testing.T) {
	p, _ := New(Options{Nodes: 16, Seed: 8})
	rng := rand.New(rand.NewSource(9))
	// Items tagged from one of three tag pools.
	items := make([]IDSet, 300)
	for i := range items {
		pool := uint32(rng.Intn(3)) * 100
		n := 5 + rng.Intn(10)
		ids := make([]uint32, n)
		for j := range ids {
			ids[j] = pool + uint32(rng.Intn(40))
		}
		items[i] = NewIDSet(ids...)
	}
	ix, err := AddIndex(p, JaccardSpace("tags"), items, nil,
		IndexOptions{Landmarks: 3, SampleSize: 150})
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.RangeSearch(items[0], 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, it := range items {
		if Jaccard(items[0], it) <= 0.8 {
			want++
		}
	}
	if len(matches) != want {
		t.Fatalf("got %d matches, want %d", len(matches), want)
	}
	if matches[0].Distance != 0 {
		t.Fatal("self not first")
	}
}

func TestReplicateAPI(t *testing.T) {
	p, ix, data := buildIndex(t, 1500)
	if err := ix.Replicate(3); err != nil {
		t.Fatal(err)
	}
	crashed := p.Crash(5)
	if crashed != 5 {
		t.Fatalf("crashed %d", crashed)
	}
	// Queries remain exact without any recovery.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5; trial++ {
		q := data[rng.Intn(len(data))]
		r := 5 + rng.Float64()*8
		matches, _, err := ix.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range data {
			if L2(q, v) <= r {
				want++
			}
		}
		if len(matches) != want {
			t.Fatalf("post-crash search with replication: got %d, want %d", len(matches), want)
		}
	}
	// Replication + LB refused.
	if err := p.EnableLoadBalancing(LBConfig{}); err == nil {
		t.Fatal("expected replication/LB guard")
	}
}
