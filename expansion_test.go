package landmarkdht

import (
	"math/rand"
	"testing"
)

// topicalCorpus builds documents grouped into topics with distinct
// vocabulary blocks, plus short keyword queries.
func topicalCorpus(rng *rand.Rand, docs, topics int) (corpus []SparseVector, topicOf []int) {
	const blockSize = 300
	for d := 0; d < docs; d++ {
		topic := rng.Intn(topics)
		n := 30 + rng.Intn(50)
		idx := make([]uint32, 0, n)
		val := make([]float64, 0, n)
		seen := map[uint32]bool{}
		for len(idx) < n {
			var term uint32
			if rng.Float64() < 0.7 {
				term = uint32(topic*blockSize + rng.Intn(blockSize))
			} else {
				term = uint32(topics*blockSize + rng.Intn(5000))
			}
			if seen[term] {
				continue
			}
			seen[term] = true
			idx = append(idx, term)
			val = append(val, 1+rng.Float64()*2)
		}
		sv, err := NewSparseVector(idx, val)
		if err != nil {
			panic(err)
		}
		corpus = append(corpus, sv)
		topicOf = append(topicOf, topic)
	}
	return corpus, topicOf
}

func shortQuery(rng *rand.Rand, topic int) SparseVector {
	const blockSize = 300
	idx := []uint32{
		uint32(topic*blockSize + rng.Intn(blockSize)),
		uint32(topic*blockSize + rng.Intn(blockSize)),
		uint32(topic*blockSize + rng.Intn(blockSize)),
	}
	sv, err := NewSparseVector(idx, []float64{1, 1, 1})
	if err != nil {
		panic(err)
	}
	return sv
}

func TestRocchioExpander(t *testing.T) {
	q, _ := NewSparseVector([]uint32{1, 2}, []float64{1, 1})
	f1, _ := NewSparseVector([]uint32{2, 3}, []float64{2, 4})
	f2, _ := NewSparseVector([]uint32{3, 4}, []float64{2, 2})
	ex := Rocchio(1, 0.5)
	got := ex(q, []SparseVector{f1, f2})
	// Expected terms: 1 (from q), 2 (q + feedback), 3, 4 (feedback).
	if got.NNZ() != 4 {
		t.Fatalf("expanded nnz = %d, want 4", got.NNZ())
	}
	weights := map[uint32]float64{}
	for i, idx := range got.Idx {
		weights[idx] = got.Val[i]
	}
	if weights[1] != 1 {
		t.Fatalf("term 1 = %v", weights[1])
	}
	if weights[2] != 1+0.5*1 { // centroid term 2 = (2+0)/2 = 1
		t.Fatalf("term 2 = %v", weights[2])
	}
	if weights[3] != 0.5*3 { // centroid term 3 = (4+2)/2 = 3
		t.Fatalf("term 3 = %v", weights[3])
	}
	// Empty feedback: unchanged.
	same := ex(q, nil)
	if same.NNZ() != q.NNZ() {
		t.Fatal("empty feedback should not change the query")
	}
}

func TestSearchWithExpansionImprovesRecall(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	corpus, topicOf := topicalCorpus(rng, 2500, 8)
	p, err := New(Options{Nodes: 48, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := AddIndex(p, CosineSpace("exp-docs"), corpus, SparseMean,
		IndexOptions{Landmarks: 6, SampleSize: 600})
	if err != nil {
		t.Fatal(err)
	}
	const k, r = 10, 0.45
	var plainHits, expandedHits int
	for trial := 0; trial < 6; trial++ {
		topic := rng.Intn(8)
		q := shortQuery(rng, topic)
		plain, _, err := ix.NearestSearch(q, k, r)
		if err != nil {
			t.Fatal(err)
		}
		expanded, _, err := ix.SearchWithExpansion(q, k, r, Rocchio(1, 0.75), 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range plain {
			if topicOf[m.ID] == topic {
				plainHits++
			}
		}
		for _, m := range expanded {
			if topicOf[m.ID] == topic {
				expandedHits++
			}
		}
		if len(expanded) > k {
			t.Fatalf("expansion returned %d > k", len(expanded))
		}
		for i := 1; i < len(expanded); i++ {
			if expanded[i].Distance < expanded[i-1].Distance {
				t.Fatal("expanded results not sorted")
			}
		}
	}
	// Expansion must not hurt topical precision (it usually helps).
	if expandedHits < plainHits {
		t.Fatalf("expansion reduced on-topic hits: %d -> %d", plainHits, expandedHits)
	}
}

func TestSearchWithExpansionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	corpus, _ := topicalCorpus(rng, 100, 2)
	p, _ := New(Options{Nodes: 8, Seed: 1})
	ix, err := AddIndex(p, CosineSpace("v-docs"), corpus, SparseMean,
		IndexOptions{Landmarks: 2, SampleSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.SearchWithExpansion(corpus[0], 0, 1, Rocchio(1, 1), 3); err == nil {
		t.Fatal("expected k error")
	}
	if _, _, err := ix.SearchWithExpansion(corpus[0], 3, 1, nil, 3); err == nil {
		t.Fatal("expected nil-expander error")
	}
	if _, _, err := ix.SearchWithExpansion(corpus[0], 3, 1, Rocchio(1, 1), 0); err == nil {
		t.Fatal("expected feedbackN error")
	}
}
