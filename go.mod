module landmarkdht

go 1.23
