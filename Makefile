# Convenience targets for the landmarkdht reproduction.

GO ?= go

.PHONY: all build test test-short test-race live-race chaos node-smoke durability-smoke repair-smoke vet lint bench bench-json bench-qps bench-qps-smoke experiments experiments-paper examples clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...
	gofmt -l . | tee /dev/stderr | wc -l | grep -q '^0$$'

# Project-specific determinism and concurrency-contract linters
# (cmd/lmlint) plus staticcheck when available. lmlint enforces the
# simulator's reproducibility contract (no global math/rand, no wall
# clock, no order-sensitive map iteration, no concurrency in
# engine-owned packages) and the live runtimes' concurrency contracts
# (no blocking on the protocol executor, no mutex held across a
# blocking call, no dropped errors on wire paths, no stale or
# unexplained suppressions). The analyzer suite's own tests run first
# so a broken analyzer can't silently pass the module.
lint:
	$(GO) test ./internal/analysis/...
	$(GO) run ./cmd/lmlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

# Skips the multi-second integration experiments.
test-short:
	$(GO) test -short ./...

# What CI runs: the race detector over the short suite.
test-race:
	$(GO) test -race -short ./...

# The live concurrent runtime under the race detector (CI's live-race
# job): livert's tests, the sim-vs-live equivalence test, and the
# lmlive demo with concurrent clients.
live-race:
	$(GO) test -race ./internal/runtime/...
	$(GO) test -race -run TestCrossRuntimeEquivalence .
	$(GO) run -race ./cmd/lmlive -nodes 24 -objects 1500 -queries 80 -clients 8

# The chaos soak (cmd/lmchaos) under the race detector: concurrent
# clients on the live runtime under message loss, duplication, frame
# drops, connection kills and churn; every Complete result is verified
# against brute force and every incomplete result must be honestly
# flagged.
chaos:
	$(GO) run -race ./cmd/lmchaos

# The multi-process deployment smoke: build cmd/lmnode, boot a 4-process
# ring over localhost TCP, run brute-force-verified queries through the
# TCP client protocol while members are SIGKILLed and restarted, and
# require every member to serve complete exact answers again afterwards.
# The -race build extends to the child lmnode processes.
node-smoke:
	$(GO) test -race -count=1 -run TestTwoProcessSmoke ./cmd/lmnode
	$(GO) run -race ./cmd/lmchaos -procs 4 -objects 1024 -dim 4 -queries 120 -clients 6 -churn 3

# Durable-state smoke (DESIGN.md §14): the WAL/walstore crash-recovery
# unit tests, then the multi-process soak in durable mode — each lmnode
# gets a data dir, members are SIGKILLed mid-traffic and restarted on
# the same address, and every restarted member must report that it
# recovered its corpus from its WAL (a silent fall-back to corpus
# regeneration fails the run) before the usual brute-force verification.
durability-smoke:
	$(GO) test -race -count=1 ./internal/wal
	$(GO) test -race -count=1 -run 'WAL|Durable' ./internal/core ./internal/runtime/netrt .
	$(GO) run -race ./cmd/lmchaos -procs 4 -objects 1024 -dim 4 -queries 120 -clients 6 -churn 3 -durable

# Replication and anti-entropy smoke (DESIGN.md §15): the replica,
# failure-detector and mutation tests under the race detector, then the
# multi-process soak with -replicas 1 and the kill-without-restart
# phase — one member is SIGKILLed and stays dead while every query must
# come back Complete and brute-force exact from the streamed replica
# copies, with the repair counters proving the copies rode the
# bulk-transfer path (point-wise fallback counter must be zero).
repair-smoke:
	$(GO) test -race -count=1 -run 'Replica|AntiEntropy|FailureDetector|Publish|ClientMut|HostileRep' ./internal/runtime/netrt
	$(GO) run -race ./cmd/lmchaos -procs 4 -objects 1024 -dim 4 -queries 120 -clients 6 -churn 3 -replicas 1 -kill-dead

bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run '^$$' ./...

# Machine-readable benchmark report via the regression harness
# (cmd/lmbench). Compare two reports with:
#   go run ./cmd/lmbench -diff BENCH_pr8.json BENCH.json
bench-json:
	$(GO) run ./cmd/lmbench -out BENCH.json

# Open-loop sustained-throughput benchmark (DESIGN.md §13): fixed
# offered qps against a live platform across the plain / batched /
# sharded / batched-sharded variant matrix, reporting p50/p99 latency
# and frames/bytes per query. Every complete answer is recall-checked
# against brute force.
bench-qps:
	$(GO) run ./cmd/lmbench -qps

# CI's throughput smoke: a small offered load that a shared runner can
# sustain. -qps-require-complete makes the exit status the gate: every
# query must come back Complete with zero transport sheds, zero
# admission rejections and zero recall mismatches.
bench-qps-smoke:
	$(GO) run ./cmd/lmbench -qps -qps-offered 100 -qps-duration 2s -qps-warmup 500ms \
		-qps-nodes 24 -qps-objects 2000 -qps-variants plain,batched,sharded \
		-qps-require-complete -out /dev/null

# Quick qualitative reproduction of every table/figure (~2 min).
experiments:
	$(GO) run ./cmd/lmsim -exp all -scale small

# Full §4 scale (slow; hours on a small machine).
experiments-paper:
	$(GO) run ./cmd/lmsim -exp all -scale paper

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dnasearch
	$(GO) run ./examples/docsearch
	$(GO) run ./examples/multiindex
	$(GO) run ./examples/faulttolerance

clean:
	$(GO) clean ./...
