// Command lmlive runs the landmark index over the live concurrent
// runtime: N node inbox goroutines carry real wire-encoded messages
// over in-process connections while client goroutines issue range and
// kNN queries concurrently. It spot-checks every range result against
// a brute-force scan and reports throughput, latency and traffic.
//
// Usage:
//
//	lmlive                          # 32 nodes, 4000 objects, 8 clients
//	lmlive -nodes 64 -clients 16 -queries 400
//	lmlive -latency-scale 1         # replay the latency model in real time
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	lm "landmarkdht"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		nodes    = flag.Int("nodes", 32, "overlay size")
		objects  = flag.Int("objects", 4000, "synthetic dataset size")
		dim      = flag.Int("dim", 8, "dataset dimensionality")
		queries  = flag.Int("queries", 200, "total queries to issue")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		seed     = flag.Int64("seed", 1, "random seed")
		latScale = flag.Float64("latency-scale", 0, "multiply modeled network latency (0 = as fast as possible)")
	)
	flag.Parse()

	p, err := lm.New(lm.Options{
		Nodes:            *nodes,
		Seed:             *seed,
		WireCodec:        true,
		Live:             true,
		LiveLatencyScale: *latScale,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmlive: %v\n", err)
		return 2
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(*seed + 7))
	data := make([]lm.Vector, *objects)
	for i := range data {
		v := make(lm.Vector, *dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		data[i] = v
	}
	space := lm.EuclideanSpace("live-demo", *dim, 0, 1)
	ix, err := lm.AddIndex(p, space, data, lm.DenseMean, lm.IndexOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmlive: %v\n", err)
		return 2
	}
	fmt.Printf("lmlive: %d nodes, %d objects (dim %d), %d clients, latency scale %g\n",
		p.Nodes(), ix.Len(), *dim, *clients, *latScale)

	// The query workload: alternating exact range queries (verified
	// against brute force) and kNN queries. Each client draws its own
	// query points from a per-client seed so the workload is fixed
	// regardless of scheduling.
	const radius = 0.25
	const k = 10
	type stats struct {
		n          int
		totalLat   time.Duration
		maxLat     time.Duration
		mismatch   int
		emptyKNN   int
		resultCnt  int
		ranges     int
		incomplete int
		uncovered  int
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		agg stats
	)
	perClient := *queries / *clients
	if perClient == 0 {
		perClient = 1
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(*seed + 1000 + int64(c)))
			var local stats
			for i := 0; i < perClient; i++ {
				q := make(lm.Vector, *dim)
				for j := range q {
					q[j] = crng.Float64()
				}
				t0 := time.Now()
				if i%2 == 0 {
					matches, st, err := ix.RangeSearch(q, radius)
					if err != nil {
						fmt.Fprintf(os.Stderr, "lmlive: range query: %v\n", err)
						local.mismatch++
						continue
					}
					local.ranges++
					if !st.Complete {
						local.incomplete++
						local.uncovered += st.UncoveredRegions
					} else if !matchesExact(data, q, radius, matches) {
						// Only a complete result promises exactness.
						local.mismatch++
					}
					local.resultCnt += len(matches)
				} else {
					matches, _, err := ix.NearestSearch(q, k, radius)
					if err != nil {
						fmt.Fprintf(os.Stderr, "lmlive: knn query: %v\n", err)
						local.mismatch++
						continue
					}
					if len(matches) == 0 {
						local.emptyKNN++
					}
					local.resultCnt += len(matches)
				}
				lat := time.Since(t0)
				local.n++
				local.totalLat += lat
				if lat > local.maxLat {
					local.maxLat = lat
				}
			}
			mu.Lock()
			agg.n += local.n
			agg.totalLat += local.totalLat
			if local.maxLat > agg.maxLat {
				agg.maxLat = local.maxLat
			}
			agg.mismatch += local.mismatch
			agg.emptyKNN += local.emptyKNN
			agg.resultCnt += local.resultCnt
			agg.ranges += local.ranges
			agg.incomplete += local.incomplete
			agg.uncovered += local.uncovered
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	tr := p.Traffic()
	fmt.Printf("lmlive: %d queries in %v (%.0f qps)\n",
		agg.n, elapsed.Round(time.Millisecond), float64(agg.n)/elapsed.Seconds())
	if agg.n > 0 {
		fmt.Printf("lmlive: mean latency %v, max %v, %.1f results/query\n",
			(agg.totalLat / time.Duration(agg.n)).Round(time.Microsecond),
			agg.maxLat.Round(time.Microsecond),
			float64(agg.resultCnt)/float64(agg.n))
	}
	fmt.Printf("lmlive: overlay traffic %d msgs, %d bytes\n", tr.Messages, tr.Bytes)
	fmt.Printf("lmlive: completeness: %d/%d range results complete (%d incomplete, %d uncovered regions)\n",
		agg.ranges-agg.incomplete, agg.ranges, agg.incomplete, agg.uncovered)
	if agg.mismatch > 0 {
		fmt.Fprintf(os.Stderr, "lmlive: %d range queries disagreed with brute force\n", agg.mismatch)
		return 1
	}
	fmt.Println("lmlive: all complete range results verified against brute force")
	return 0
}

// matchesExact verifies a range result against a brute-force scan.
func matchesExact(data []lm.Vector, q lm.Vector, r float64, matches []lm.Match[lm.Vector]) bool {
	var want []int
	for i, v := range data {
		if dist(q, v) <= r {
			want = append(want, i)
		}
	}
	got := make([]int, len(matches))
	for i, m := range matches {
		got[i] = m.ID
	}
	sort.Ints(got)
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func dist(a, b lm.Vector) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
