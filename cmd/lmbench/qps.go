//lint:file-allow nogoroutine open-loop load generation: client goroutines drive a live platform, not a sim engine
//lint:file-allow wallclock the sustained-qps benchmark measures real latency under real offered load

package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	lm "landmarkdht"
)

// qpsOptions parameterizes the open-loop sustained-throughput
// benchmark: queries are issued at a fixed offered rate regardless of
// how fast they complete (open loop, so saturation shows up as latency
// and shed counters, not as a slowed-down generator).
type qpsOptions struct {
	Offered   float64       // fixed offered load, queries per second
	Duration  time.Duration // measurement window
	Warmup    time.Duration // unmeasured lead-in at the same rate
	Nodes     int
	Objects   int
	Dim       int
	Seed      int64
	Radius    float64
	Executors int           // executor count for sharded variants (0 = GOMAXPROCS)
	BatchDly  time.Duration // flush deadline for batched variants
	MaxActive int           // admission cap (0 = unlimited)
	MaxInbox  int           // delivery-queue bound (0 = livert default)
	Variants  []string
	// RequireComplete fails the run unless every measured query came
	// back Complete and nothing was shed or rejected — the CI smoke
	// contract at an offered load the machine can sustain.
	RequireComplete bool
}

// qpsVariant describes one configuration leg of the benchmark matrix.
type qpsVariant struct {
	name      string
	batch     bool
	executors bool
}

var qpsVariants = []qpsVariant{
	{name: "plain"},
	{name: "batched", batch: true},
	{name: "sharded", executors: true},
	{name: "batched-sharded", batch: true, executors: true},
}

// runQPS runs the requested variants and returns their report plus
// whether the RequireComplete contract failed.
func runQPS(o qpsOptions) (*Report, bool, error) {
	rep := &Report{Bench: "SustainedQPS", Benchtime: o.Duration.String()}
	failed := false
	for _, v := range qpsVariants {
		if !qpsVariantWanted(o.Variants, v.name) {
			continue
		}
		b, ok, err := runQPSVariant(o, v)
		if err != nil {
			return nil, false, fmt.Errorf("variant %s: %w", v.name, err)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		if !ok {
			failed = true
		}
	}
	if len(rep.Benchmarks) == 0 {
		return nil, false, fmt.Errorf("no variants selected from %v", o.Variants)
	}
	return rep, failed, nil
}

func qpsVariantWanted(wanted []string, name string) bool {
	for _, w := range wanted {
		if strings.TrimSpace(w) == name {
			return true
		}
	}
	return false
}

// runQPSVariant boots one live platform, offers o.Offered qps for the
// window, and reduces the samples to the reported metrics. The ok
// return is the RequireComplete verdict (always true when the flag is
// off).
func runQPSVariant(o qpsOptions, v qpsVariant) (Benchmark, bool, error) {
	opts := lm.Options{
		Nodes:            o.Nodes,
		Seed:             o.Seed,
		WireCodec:        true,
		Live:             true,
		MaxActiveQueries: o.MaxActive,
		MaxInbox:         o.MaxInbox,
	}
	if v.batch {
		opts.Batch = lm.BatchOptions{MaxDelay: o.BatchDly}
	}
	execs := 0
	if v.executors {
		execs = o.Executors
		if execs <= 0 {
			execs = runtime.GOMAXPROCS(0)
		}
		opts.Executors = execs
	}
	p, err := lm.New(opts)
	if err != nil {
		return Benchmark{}, false, err
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(o.Seed + 7))
	data := make([]lm.Vector, o.Objects)
	for i := range data {
		vec := make(lm.Vector, o.Dim)
		for j := range vec {
			vec[j] = rng.Float64()
		}
		data[i] = vec
	}
	space := lm.EuclideanSpace("qps", o.Dim, 0, 1)
	ix, err := lm.AddIndex(p, space, data, lm.DenseMean, lm.IndexOptions{})
	if err != nil {
		return Benchmark{}, false, err
	}

	// A fixed pool of query points near real objects, with brute-force
	// ground truth so every complete answer is recall-checked: batching
	// and sharding must win throughput at equal recall, not by dropping
	// matches.
	const nQueries = 64
	queries := make([]lm.Vector, nQueries)
	want := make([]int, nQueries)
	for i := range queries {
		q := append(lm.Vector(nil), data[rng.Intn(len(data))]...)
		for j := range q {
			q[j] += (rng.Float64() - 0.5) * 0.05
		}
		queries[i] = q
		for _, d := range data {
			if l2(q, d) <= o.Radius {
				want[i]++
			}
		}
	}

	type sample struct {
		lat      time.Duration
		complete bool
	}
	var (
		mu        sync.Mutex
		samples   []sample
		recallBad int
		queryErr  error
		wg        sync.WaitGroup
	)
	issue := func(qi int, measure bool) {
		defer wg.Done()
		t0 := time.Now()
		matches, st, err := ix.RangeSearch(queries[qi], o.Radius)
		lat := time.Since(t0)
		if !measure {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if queryErr == nil {
				queryErr = err
			}
			return
		}
		samples = append(samples, sample{lat: lat, complete: st.Complete})
		if st.Complete && len(matches) != want[qi] {
			recallBad++
		}
	}

	// Open loop: one query every interval, issued from its own
	// goroutine so a slow query never stalls the generator.
	interval := time.Duration(float64(time.Second) / o.Offered)
	if interval <= 0 {
		interval = time.Microsecond
	}
	run := func(d time.Duration, measure bool) int {
		n := 0
		tick := time.NewTicker(interval)
		defer tick.Stop()
		stop := time.Now().Add(d)
		for now := range tick.C {
			if now.After(stop) {
				return n
			}
			wg.Add(1)
			go issue(rng.Intn(nQueries), measure)
			n++
		}
		return n
	}
	run(o.Warmup, false)
	wg.Wait()

	relBefore := p.Reliability()
	trBefore := p.Traffic()
	issued := run(o.Duration, true)
	wg.Wait()
	trAfter := p.Traffic()
	relAfter := p.Reliability()

	mu.Lock()
	defer mu.Unlock()
	if queryErr != nil {
		return Benchmark{}, false, queryErr
	}
	complete := 0
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		lats = append(lats, s.lat)
		if s.complete {
			complete++
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	shed := relAfter.TransportShed - relBefore.TransportShed
	rejected := relAfter.AdmissionRejected - relBefore.AdmissionRejected
	b := Benchmark{
		Pkg:        "landmarkdht/cmd/lmbench",
		Name:       "SustainedQPS/" + v.name,
		Iterations: int64(issued),
		Metrics: map[string]float64{
			"qps-offered":        o.Offered,
			"qps-complete":       float64(complete) / o.Duration.Seconds(),
			"p50-ms":             qpsQuantile(lats, 0.50),
			"p99-ms":             qpsQuantile(lats, 0.99),
			"frames/query":       qpsPer(trAfter.Frames-trBefore.Frames, issued),
			"bytes/query":        qpsPer(trAfter.Bytes-trBefore.Bytes, issued),
			"msgs/query":         qpsPer(trAfter.Messages-trBefore.Messages, issued),
			"complete-frac":      qpsFrac(complete, len(samples)),
			"shed":               float64(shed),
			"admission-rejected": float64(rejected),
			"recall-mismatches":  float64(recallBad),
			"executors":          float64(1 + maxInt(execs-1, 0)),
			"gomaxprocs":         float64(runtime.GOMAXPROCS(0)),
		},
	}
	ok := true
	if o.RequireComplete {
		ok = complete == len(samples) && len(samples) > 0 && shed == 0 && rejected == 0 && recallBad == 0
		if !ok {
			fmt.Fprintf(os.Stderr,
				"lmbench: qps variant %s violated the completeness contract: "+
					"%d/%d complete, shed=%d, rejected=%d, recall mismatches=%d\n",
				v.name, complete, len(samples), shed, rejected, recallBad)
		}
	}
	if recallBad > 0 {
		fmt.Fprintf(os.Stderr, "lmbench: qps variant %s: %d complete answers disagreed with brute force\n",
			v.name, recallBad)
		ok = false
	}
	return b, ok, nil
}

// qpsQuantile returns the q-quantile of sorted latencies, in
// milliseconds.
func qpsQuantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Millisecond)
}

func qpsPer(total int64, n int) float64 {
	if n == 0 {
		return math.NaN()
	}
	return float64(total) / float64(n)
}

func qpsFrac(num, den int) float64 {
	if den == 0 {
		return math.NaN()
	}
	return float64(num) / float64(den)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// l2 is the benchmark's own ground-truth distance (the corpus is
// Euclidean).
func l2(a, b lm.Vector) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
