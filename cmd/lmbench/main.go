// Command lmbench is the benchmark-regression harness: it runs the
// repo's benchmarks through `go test -bench`, parses the standard
// benchmark output (ns/op, B/op, allocs/op plus custom metrics such as
// mean-recall) into a machine-readable JSON report, and can compare a
// run against a checked-in baseline with a configurable regression
// threshold.
//
// Usage:
//
//	lmbench -out BENCH.json                      # run everything, write JSON
//	lmbench -bench 'Schedule|Edit' -pkgs ./internal/...
//	lmbench -out new.json -baseline BENCH_pr8.json -threshold 0.2
//	lmbench -diff BENCH_pr8.json new.json        # compare two reports
//
// Only ns/op, B/op and allocs/op are regression-gated; custom metrics
// are carried in the report and printed in diffs but do not fail the
// run (their improvement direction is metric-specific).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	Pkg        string             `json:"pkg"`
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the JSON document lmbench reads and writes.
type Report struct {
	Bench      string      `json:"bench"`
	Benchtime  string      `json:"benchtime"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		benchRe   = flag.String("bench", ".", "benchmark regexp passed to go test -bench")
		benchtime = flag.String("benchtime", "1x", "benchtime passed to go test (e.g. 1x, 50x, 1s)")
		pkgs      = flag.String("pkgs", "./...", "comma-separated package patterns to benchmark")
		count     = flag.Int("count", 1, "repeat each benchmark N times and average")
		out       = flag.String("out", "", "write the JSON report to this file (default stdout)")
		baseline  = flag.String("baseline", "", "compare the run against this baseline JSON report")
		threshold = flag.Float64("threshold", 0.2, "allowed relative regression on gated metrics")
		gate      = flag.String("gate", "", "comma-separated metrics to gate (default ns/op,B/op,allocs/op); "+
			"e.g. -gate allocs/op ignores timing noise in CI")
		diffMode = flag.Bool("diff", false, "compare two JSON reports: lmbench -diff old.json new.json")

		qpsMode     = flag.Bool("qps", false, "run the open-loop sustained-qps benchmark instead of go test -bench")
		qpsOffered  = flag.Float64("qps-offered", 200, "offered load in queries per second")
		qpsDuration = flag.Duration("qps-duration", 4*time.Second, "measured window per variant")
		qpsWarmup   = flag.Duration("qps-warmup", time.Second, "unmeasured lead-in per variant")
		qpsNodes    = flag.Int("qps-nodes", 48, "overlay size")
		qpsObjects  = flag.Int("qps-objects", 6000, "synthetic corpus size")
		qpsDim      = flag.Int("qps-dim", 8, "corpus dimensionality")
		qpsSeed     = flag.Int64("qps-seed", 1, "workload seed")
		qpsRadius   = flag.Float64("qps-radius", 0.25, "range-query radius")
		qpsExecs    = flag.Int("qps-executors", 0, "executor count for sharded variants (0 = GOMAXPROCS)")
		qpsBatchDly = flag.Duration("qps-batch-delay", 2*time.Millisecond, "destination-batch flush deadline for batched variants")
		qpsMaxAct   = flag.Int("qps-max-active", 0, "admission cap on concurrent queries (0 = unlimited)")
		qpsMaxInbox = flag.Int("qps-max-inbox", 0, "delivery-queue bound (0 = runtime default, negative = unbounded)")
		qpsVars     = flag.String("qps-variants", "plain,batched,sharded,batched-sharded", "comma-separated variants to run")
		qpsComplete = flag.Bool("qps-require-complete", false,
			"exit nonzero unless every measured query is Complete with zero sheds/rejections (CI smoke contract)")
	)
	flag.Parse()
	if *gate != "" {
		gated = nil
		for _, unit := range strings.Split(*gate, ",") {
			if unit = strings.TrimSpace(unit); unit != "" {
				gated = append(gated, unit)
			}
		}
		if len(gated) == 0 {
			fmt.Fprintln(os.Stderr, "lmbench: -gate lists no metrics")
			return 2
		}
	}

	if *diffMode {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "lmbench: -diff needs exactly two report files")
			return 2
		}
		old, err := readReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
			return 2
		}
		cur, err := readReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
			return 2
		}
		if compare(os.Stdout, old, cur, *threshold) {
			return 1
		}
		return 0
	}

	var rep *Report
	var err error
	qpsFailed := false
	if *qpsMode {
		rep, qpsFailed, err = runQPS(qpsOptions{
			Offered:         *qpsOffered,
			Duration:        *qpsDuration,
			Warmup:          *qpsWarmup,
			Nodes:           *qpsNodes,
			Objects:         *qpsObjects,
			Dim:             *qpsDim,
			Seed:            *qpsSeed,
			Radius:          *qpsRadius,
			Executors:       *qpsExecs,
			BatchDly:        *qpsBatchDly,
			MaxActive:       *qpsMaxAct,
			MaxInbox:        *qpsMaxInbox,
			Variants:        strings.Split(*qpsVars, ","),
			RequireComplete: *qpsComplete,
		})
	} else {
		rep, err = runBenchmarks(*benchRe, *benchtime, *count, strings.Split(*pkgs, ","))
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
		return 2
	}
	if err := writeReport(rep, *out); err != nil {
		fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
		return 2
	}
	if *baseline != "" {
		old, err := readReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmbench: %v\n", err)
			return 2
		}
		if compare(os.Stderr, old, rep, *threshold) {
			return 1
		}
	}
	if qpsFailed {
		return 1
	}
	return 0
}

// runBenchmarks shells out to go test and parses the benchmark lines.
func runBenchmarks(benchRe, benchtime string, count int, pkgs []string) (*Report, error) {
	args := []string{"test", "-run=^$", "-bench=" + benchRe, "-benchmem",
		"-benchtime=" + benchtime, "-count=" + strconv.Itoa(count)}
	for _, p := range pkgs {
		if p = strings.TrimSpace(p); p != "" {
			args = append(args, p)
		}
	}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		// Benchmark output is still useful for diagnosing the failure.
		os.Stderr.Write(outBytes) //lint:allow errdrop best-effort diagnostic passthrough; the command failure is already being returned
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	rep := &Report{Bench: benchRe, Benchtime: benchtime}
	if err := parseBenchOutput(string(outBytes), rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchOutput consumes `go test -bench` text output. Lines look
// like:
//
//	pkg: landmarkdht/internal/sim
//	BenchmarkSchedule-8   1000000   55.65 ns/op   24 B/op   1 allocs/op
//
// Metric pairs after the iteration count are (value, unit); custom
// b.ReportMetric units come through the same way. Repeated lines for
// the same benchmark (-count > 1) are averaged.
func parseBenchOutput(out string, rep *Report) error {
	type acc struct {
		b Benchmark
		n int
	}
	var order []string
	accs := map[string]*acc{}
	pkg := ""
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "pkg: ") {
			pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the GOMAXPROCS suffix so reports compare across hosts.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		metrics := map[string]float64{}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return fmt.Errorf("bad metric value in %q", line)
			}
			metrics[fields[i+1]] = v
		}
		key := pkg + "." + name
		a, ok := accs[key]
		if !ok {
			a = &acc{b: Benchmark{Pkg: pkg, Name: name, Metrics: map[string]float64{}}}
			accs[key] = a
			order = append(order, key)
		}
		a.n++
		a.b.Iterations += iters
		for unit, v := range metrics {
			a.b.Metrics[unit] += v
		}
	}
	for _, key := range order {
		a := accs[key]
		for unit := range a.b.Metrics {
			a.b.Metrics[unit] /= float64(a.n)
		}
		rep.Benchmarks = append(rep.Benchmarks, a.b)
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in go test output")
	}
	return nil
}

// gated lists the metrics whose increase counts as a regression. The
// -gate flag narrows it (CI gates allocs/op only: allocation counts are
// exact while ns/op varies with machine load).
var gated = []string{"ns/op", "B/op", "allocs/op"}

// compare prints a per-benchmark diff of old vs cur and returns true
// when any gated metric regressed beyond the threshold. Benchmarks
// present on only one side are reported but never fail the run.
func compare(w *os.File, old, cur *Report, threshold float64) bool {
	oldBy := map[string]Benchmark{}
	for _, b := range old.Benchmarks {
		oldBy[b.Pkg+"."+b.Name] = b
	}
	regressed := false
	for _, nb := range cur.Benchmarks {
		key := nb.Pkg + "." + nb.Name
		ob, ok := oldBy[key]
		if !ok {
			fmt.Fprintf(w, "%-60s new benchmark (no baseline)\n", key)
			continue
		}
		delete(oldBy, key)
		for _, unit := range gated {
			ov, o1 := ob.Metrics[unit]
			nv, n1 := nb.Metrics[unit]
			if !o1 || !n1 {
				continue
			}
			verdict := "ok"
			switch {
			case ov == 0 && nv > 0:
				verdict = "REGRESSION"
				regressed = true
			case ov > 0 && nv > ov*(1+threshold):
				verdict = "REGRESSION"
				regressed = true
			case ov > 0 && nv < ov*(1-threshold):
				verdict = "improved"
			}
			if verdict != "ok" {
				fmt.Fprintf(w, "%-60s %-10s %12.2f -> %-12.2f %s\n", key, unit, ov, nv, verdict)
			}
		}
		// Custom metrics: informational only.
		var custom []string
		for unit := range nb.Metrics {
			if unit != "ns/op" && unit != "B/op" && unit != "allocs/op" {
				custom = append(custom, unit)
			}
		}
		sort.Strings(custom)
		for _, unit := range custom {
			if ov, ok := ob.Metrics[unit]; ok && ov != nb.Metrics[unit] {
				fmt.Fprintf(w, "%-60s %-10s %12.4f -> %-12.4f (info)\n", key, unit, ov, nb.Metrics[unit])
			}
		}
	}
	var gone []string
	for key := range oldBy {
		gone = append(gone, key)
	}
	sort.Strings(gone)
	for _, key := range gone {
		fmt.Fprintf(w, "%-60s missing from current run\n", key)
	}
	if regressed {
		fmt.Fprintf(w, "lmbench: regression past %.0f%% threshold\n", threshold*100)
	}
	return regressed
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func writeReport(rep *Report, path string) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
