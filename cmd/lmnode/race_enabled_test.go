//go:build race

package main

// raceDetectorEnabled gates the multi-process smoke test on the race
// detector, mirroring the root package's crossruntime gate.
const raceDetectorEnabled = true
