// Command lmnode runs one ring node as a standalone OS process: a
// deployment of the landmark index where the overlay is N processes
// linked over TCP instead of one simulated or live in-process overlay.
//
// Every process rebuilds the same deterministic corpus from -seed and
// -metric (the peer handshake refuses nodes built from different
// parameters) and serves the slice of it that its ring position owns.
// Start a ring by launching one process with no -join and pointing the
// rest at it:
//
//	lmnode -listen 127.0.0.1:7001
//	lmnode -listen 127.0.0.1:7002 -join 127.0.0.1:7001
//	lmnode -listen 127.0.0.1:7003 -join 127.0.0.1:7001
//
// Each process prints a "ready" line with its bound address and node
// ID, then serves peer and client connections until SIGINT or SIGTERM.
// Query it from another process with landmarkdht.DialNode, or run a
// verified multi-process soak with cmd/lmchaos -procs.
//
// With -data-dir the node persists its corpus to a write-ahead log in
// that directory and a restart recovers from it instead of rebuilding
// (the ready line reports recovered=true). Each node needs its own
// directory; a directory written under a different corpus config is a
// startup error.
//
// With -replicas K (same value ring-wide) each node streams its region
// to its K ring successors and keeps the copies repaired by periodic
// digest exchange; queries for a member that the failure detector marks
// down are answered exactly from the synced copies.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	lm "landmarkdht"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		listen    = flag.String("listen", "127.0.0.1:0", "TCP listen address (node identity derives from it)")
		join      = flag.String("join", "", "comma-separated peer addresses to bootstrap from")
		seed      = flag.Int64("seed", 1, "corpus seed (must match across the ring)")
		metricF   = flag.String("metric", "euclid", "corpus metric: euclid or edit")
		objects   = flag.Int("objects", 0, "corpus size (0 = default)")
		dim       = flag.Int("dim", 0, "vector dimensionality (0 = default)")
		landmarks = flag.Int("landmarks", 0, "landmark count (0 = default)")
		deadline  = flag.Duration("deadline", 0, "per-query deadline (0 = default)")
		dataDir   = flag.String("data-dir", "", "durable state directory (restart recovers the corpus from it)")
		replicas  = flag.Int("replicas", 0, "ring successors holding a streamed copy of this node's region (same value ring-wide)")
		verbose   = flag.Bool("v", false, "log membership and link events")
	)
	flag.Parse()

	opts := lm.NodeOptions{
		Listen:    *listen,
		Seed:      *seed,
		Metric:    *metricF,
		Objects:   *objects,
		Dim:       *dim,
		Landmarks: *landmarks,
		Deadline:  *deadline,
		DataDir:   *dataDir,
		Replicas:  *replicas,
	}
	for _, j := range strings.Split(*join, ",") {
		if j = strings.TrimSpace(j); j != "" {
			opts.Join = append(opts.Join, j)
		}
	}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lmnode: "+format+"\n", args...)
		}
	}

	n, err := lm.StartNode(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmnode: %v\n", err)
		return 2
	}
	defer n.Close()

	// The ready line is the process's contract with parents (tests,
	// lmchaos -procs): addr is the bound address to join or dial, and
	// recovered tells a restart-supervisor whether the corpus came off
	// disk (true) or was built fresh (false).
	fmt.Printf("lmnode: ready addr=%s id=%016x metric=%s seed=%d recovered=%v\n",
		n.Addr(), n.ID(), *metricF, *seed, n.Recovered())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("lmnode: %v, shutting down\n", s)
	return 0
}
