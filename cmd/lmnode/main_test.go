package main

import (
	"bufio"
	"fmt"
	"math/rand"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"landmarkdht/internal/runtime/netrt"
)

// TestTwoProcessSmoke boots a 2-process ring from the built lmnode
// binary and runs brute-force-verified queries through the TCP client
// protocol. Gated on the race detector: this is the concurrency smoke
// test for the real-process deployment.
func TestTwoProcessSmoke(t *testing.T) {
	if !raceDetectorEnabled {
		t.Skip("two-process smoke test runs under -race (go test -race ./cmd/lmnode)")
	}
	bin := filepath.Join(t.TempDir(), "lmnode")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	data := netrt.DataConfig{Metric: "euclid", Seed: 11, Objects: 256, Dim: 3, Landmarks: 4}
	common := []string{
		"-seed", "11", "-metric", "euclid",
		"-objects", "256", "-dim", "3", "-landmarks", "4",
	}
	addr1 := startNode(t, bin, append([]string{"-listen", "127.0.0.1:0"}, common...)...)
	startNode(t, bin, append([]string{"-listen", "127.0.0.1:0", "-join", addr1}, common...)...)

	c, err := netrt.Dial(addr1, 5*time.Second)
	if err != nil {
		t.Fatalf("dial %s: %v", addr1, err)
	}
	defer c.Close()

	// Wait for the two processes to see each other.
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := c.Info(2 * time.Second)
		if err != nil {
			t.Fatalf("info: %v", err)
		}
		if len(info.Members) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ring never converged: %d members", len(info.Members))
		}
		time.Sleep(50 * time.Millisecond)
	}

	ds, err := netrt.BuildDataset(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	exact := 0
	for i := 0; i < 8; i++ {
		qobj := ds.RandomQuery(rng)
		r := 0.2 + 0.3*rng.Float64()
		out, err := c.Query(qobj, r, 10*time.Second)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			t.Fatal(err)
		}
		if !out.Complete {
			continue // honest incompleteness is allowed; exactness is not optional below
		}
		if len(out.Entries) != len(want) {
			t.Fatalf("query %d: complete but %d entries, brute force %d", i, len(out.Entries), len(want))
		}
		for j := range want {
			if out.Entries[j].Obj != want[j].Obj {
				t.Fatalf("query %d: entry %d is object %d, brute force %d", i, j, out.Entries[j].Obj, want[j].Obj)
			}
		}
		exact++
	}
	if exact == 0 {
		t.Fatal("no query completed on a healthy 2-process ring")
	}
}

// startNode launches one lmnode process, scrapes its ready line for
// the bound address, and registers cleanup that SIGTERMs it.
func startNode(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stderr = nil
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	ready := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "addr="); i >= 0 {
				f := strings.Fields(line[i+len("addr="):])
				if len(f) > 0 {
					ready <- f[0]
					break
				}
			}
		}
		// Keep draining so the child never blocks on a full pipe.
		for sc.Scan() {
		}
	}()
	select {
	case addr := <-ready:
		return addr
	case <-time.After(15 * time.Second):
		t.Fatal(fmt.Errorf("lmnode never printed its ready line"))
		return ""
	}
}
