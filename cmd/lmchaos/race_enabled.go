//go:build race

package main

// raceBuild mirrors whether this lmchaos binary was built with the
// race detector; -procs mode builds its child lmnode binary the same
// way so the whole process tree is race-checked together.
const raceBuild = true
