// Command lmchaos is the chaos soak: it runs the landmark index over
// the live concurrent runtime under sustained fault injection at every
// layer — overlay message loss and duplication, live-transport frame
// drops and connection kills, and membership churn (one-at-a-time
// crashes and joins) — while concurrent clients issue range queries
// with retries, hedging and a per-query deadline.
//
// The soak's contract is the completeness accounting itself:
//
//   - every result flagged Complete must agree exactly with a
//     brute-force scan of the dataset (a complete range search is
//     exact, no matter what the network did), and
//   - every incomplete result must be honest about the gap: a correct
//     subset of the exact answer, with DroppedSubqueries or
//     UncoveredRegions non-zero.
//
// Any violation exits non-zero. Run it under the race detector:
//
//	go run -race ./cmd/lmchaos
//	go run -race ./cmd/lmchaos -nodes 48 -queries 400 -drop 0.1
//
// With -procs N the soak instead runs over N real lmnode OS processes
// linked by TCP, with SIGKILL-and-restart churn (see procs.go):
//
//	go run -race ./cmd/lmchaos -procs 8 -objects 1024 -dim 4
//
// With -replicas K the processes stream region copies to their ring
// successors; adding -kill-dead appends a kill-without-restart phase
// that SIGKILLs one member and leaves it dead while brute-force-
// verifying that every query stays Complete and exact, that the
// repairs rode the bulk-transfer path (aggregate Repairs > 0), and
// that the point-wise fallback counter stayed zero:
//
//	go run -race ./cmd/lmchaos -procs 4 -replicas 1 -kill-dead
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	lm "landmarkdht"
)

func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		nodes    = flag.Int("nodes", 32, "overlay size")
		objects  = flag.Int("objects", 3000, "synthetic dataset size")
		dim      = flag.Int("dim", 8, "dataset dimensionality")
		queries  = flag.Int("queries", 240, "total queries to issue")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		seed     = flag.Int64("seed", 1, "random seed")
		churn    = flag.Int("churn", 6, "crash/join cycles during the soak")
		drop     = flag.Float64("drop", 0.05, "overlay message loss probability")
		dup      = flag.Float64("dup", 0.02, "query/ack duplication probability")
		frame    = flag.Float64("framedrop", 0.02, "live-transport frame drop probability")
		killconn = flag.Float64("killconn", 0.002, "per-frame connection kill probability")
		procs    = flag.Int("procs", 0, "run the soak over this many real lmnode OS processes instead (SIGKILL churn; see procs.go)")
		durable  = flag.Bool("durable", false, "with -procs: give each member a data dir; restarted members must recover from their WAL (Recovered=true) or the soak fails")
		replicas = flag.Int("replicas", 0, "with -procs: each member streams its region to this many ring successors")
		killDead = flag.Bool("kill-dead", false, "with -procs and -replicas: kill one member without restart and require Complete exact answers while it stays dead")
		qps      = flag.Float64("qps", 0, "fixed offered load in queries per second across all clients (0 = closed loop)")
		execs    = flag.Int("executors", 0, "shard index work across this many executors (0/1 = single protocol executor)")
		batchDly = flag.Duration("batch-delay", 0, "destination-batch flush deadline (0 = batching off)")
		maxAct   = flag.Int("max-active", 0, "admission cap on concurrent queries (0 = unlimited)")
	)
	flag.Parse()

	if *killDead && (*procs < 2 || *replicas < 1) {
		fmt.Fprintln(os.Stderr, "lmchaos: -kill-dead needs -procs >= 2 and -replicas >= 1")
		return 2
	}
	if *procs > 0 {
		return realProcs(procOpts{
			n:        *procs,
			seed:     *seed,
			queries:  *queries,
			clients:  *clients,
			churn:    *churn,
			objects:  *objects,
			dim:      *dim,
			durable:  *durable,
			replicas: *replicas,
			killDead: *killDead,
		})
	}

	p, err := lm.New(lm.Options{
		Nodes:     *nodes,
		Seed:      *seed,
		WireCodec: true,
		Live:      true,
		Faults: &lm.FaultOptions{
			Drop:      *drop,
			Duplicate: *dup,
			FrameDrop: *frame,
			KillConn:  *killconn,
			Seed:      *seed + 11,
		},
		Retry:            lm.RetryConfig{MaxRetries: 3},
		Deadline:         10 * time.Second,
		Hedge:            lm.HedgeConfig{Delay: 250 * time.Millisecond},
		Batch:            lm.BatchOptions{MaxDelay: *batchDly},
		Executors:        *execs,
		MaxActiveQueries: *maxAct,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: %v\n", err)
		return 2
	}
	defer p.Close()

	rng := rand.New(rand.NewSource(*seed + 7))
	data := make([]lm.Vector, *objects)
	for i := range data {
		v := make(lm.Vector, *dim)
		for j := range v {
			v[j] = rng.Float64()
		}
		data[i] = v
	}
	space := lm.EuclideanSpace("chaos", *dim, 0, 1)
	ix, err := lm.AddIndex(p, space, data, lm.DenseMean, lm.IndexOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: %v\n", err)
		return 2
	}
	// Three copies of every entry: one-at-a-time churn never takes a
	// region's whole replica set, so complete answers stay available
	// throughout the soak.
	if err := ix.Replicate(3); err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: %v\n", err)
		return 2
	}
	fmt.Printf("lmchaos: %d nodes, %d objects (dim %d), %d clients, 3-way replicated\n",
		p.Nodes(), ix.Len(), *dim, *clients)
	fmt.Printf("lmchaos: faults: drop %.0f%%, dup %.0f%%, frame drop %.0f%%, conn kill %.2f%%, %d crash/join cycles\n",
		*drop*100, *dup*100, *frame*100, *killconn*100, *churn)

	// The churn goroutine crashes one node and joins one replacement
	// per cycle, spread over the soak. Membership changes run on the
	// protocol executor, serialized with query routing; replica repair
	// completes before the next message routes.
	churnDone := make(chan struct{})
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		for i := 0; i < *churn; i++ {
			select {
			case <-churnDone:
				return
			case <-time.After(400 * time.Millisecond):
			}
			p.Crash(1)
			select {
			case <-churnDone:
				return
			case <-time.After(400 * time.Millisecond):
			}
			p.Join(1)
		}
	}()

	const radius = 0.25
	type stats struct {
		n          int
		complete   int
		incomplete int
		failures   int
		resultCnt  int
		totalLat   time.Duration
		maxLat     time.Duration
	}
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		agg stats
	)
	perClient := *queries / *clients
	if perClient == 0 {
		perClient = 1
	}
	// With -qps the soak switches from closed-loop (issue as fast as
	// answers arrive) to a fixed offered rate: each client paces its
	// queries on a fixed schedule, staggered across clients, and only
	// skips sleeping when it has fallen behind. The exactness contract
	// below is unchanged — overload surfaces as honest incompletes and
	// admission rejections, never as wrong answers.
	var clientInterval time.Duration
	if *qps > 0 {
		clientInterval = time.Duration(float64(*clients) * float64(time.Second) / *qps)
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(*seed + 1000 + int64(c)))
			var local stats
			for i := 0; i < perClient; i++ {
				if clientInterval > 0 {
					offset := clientInterval * time.Duration(c) / time.Duration(*clients)
					next := start.Add(time.Duration(i)*clientInterval + offset)
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				}
				q := make(lm.Vector, *dim)
				for j := range q {
					q[j] = crng.Float64()
				}
				t0 := time.Now()
				matches, st, err := ix.RangeSearch(q, radius)
				if err != nil {
					fmt.Fprintf(os.Stderr, "lmchaos: client %d query %d: %v\n", c, i, err)
					local.failures++
					continue
				}
				lat := time.Since(t0)
				local.n++
				local.totalLat += lat
				if lat > local.maxLat {
					local.maxLat = lat
				}
				local.resultCnt += len(matches)
				want := bruteForce(data, q, radius)
				if st.Complete {
					local.complete++
					if !sameIDs(matches, want) {
						fmt.Fprintf(os.Stderr,
							"lmchaos: FAIL: complete result disagrees with brute force (%d got, %d want)\n",
							len(matches), len(want))
						local.failures++
					}
				} else {
					local.incomplete++
					if st.DroppedSubqueries == 0 && st.UncoveredRegions == 0 {
						fmt.Fprintf(os.Stderr,
							"lmchaos: FAIL: incomplete result with no dropped subqueries and no uncovered regions\n")
						local.failures++
					}
					if !subsetIDs(matches, want) {
						fmt.Fprintf(os.Stderr,
							"lmchaos: FAIL: incomplete result is not a subset of the exact answer\n")
						local.failures++
					}
				}
			}
			mu.Lock()
			agg.n += local.n
			agg.complete += local.complete
			agg.incomplete += local.incomplete
			agg.failures += local.failures
			agg.resultCnt += local.resultCnt
			agg.totalLat += local.totalLat
			if local.maxLat > agg.maxLat {
				agg.maxLat = local.maxLat
			}
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	close(churnDone)
	churnWG.Wait()
	elapsed := time.Since(start)

	rel := p.Reliability()
	fs := p.Faults()
	tr := p.Traffic()
	if *qps > 0 {
		fmt.Printf("lmchaos: offered %.0f qps fixed (open loop)\n", *qps)
	}
	fmt.Printf("lmchaos: %d queries in %v (%.0f qps), %.1f results/query\n",
		agg.n, elapsed.Round(time.Millisecond), float64(agg.n)/elapsed.Seconds(),
		float64(agg.resultCnt)/float64(max(agg.n, 1)))
	fmt.Printf("lmchaos: traffic: %d messages in %d frames, %d bytes\n",
		tr.Messages, tr.Frames, tr.Bytes)
	if agg.n > 0 {
		fmt.Printf("lmchaos: mean latency %v, max %v\n",
			(agg.totalLat / time.Duration(agg.n)).Round(time.Microsecond),
			agg.maxLat.Round(time.Microsecond))
	}
	fmt.Printf("lmchaos: %d complete (all verified exact), %d incomplete (all honestly flagged)\n",
		agg.complete, agg.incomplete)
	fmt.Printf("lmchaos: injected: %d msgs dropped, %d duplicated, %d frames dropped, %d conns killed\n",
		fs.MessagesDropped, fs.MessagesDuplicated, fs.FramesDropped, fs.ConnsKilled)
	fmt.Printf("lmchaos: recovery: %d retransmissions, %d recovered, %d hedges, %d subqueries lost for good\n",
		rel.RetriesIssued, rel.Recovered, rel.Hedges, rel.Dropped)
	fmt.Printf("lmchaos: backpressure: %d admission rejections, %d transport sheds\n",
		rel.AdmissionRejected, rel.TransportShed)

	injected := fs.MessagesDropped + fs.MessagesDuplicated + fs.FramesDropped + fs.ConnsKilled
	if injected == 0 && (*drop > 0 || *dup > 0 || *frame > 0 || *killconn > 0) {
		fmt.Fprintln(os.Stderr, "lmchaos: FAIL: fault knobs set but nothing was injected")
		return 1
	}
	if agg.failures > 0 {
		fmt.Fprintf(os.Stderr, "lmchaos: FAIL: %d completeness violations\n", agg.failures)
		return 1
	}
	fmt.Println("lmchaos: PASS: completeness contract held under chaos")
	return 0
}

// bruteForce returns the sorted ids of every object within r of q.
func bruteForce(data []lm.Vector, q lm.Vector, r float64) []int {
	var want []int
	for i, v := range data {
		if dist(q, v) <= r {
			want = append(want, i)
		}
	}
	return want
}

// sameIDs reports whether the matches cover exactly the wanted ids.
func sameIDs(matches []lm.Match[lm.Vector], want []int) bool {
	if len(matches) != len(want) {
		return false
	}
	got := make([]int, len(matches))
	for i, m := range matches {
		got[i] = m.ID
	}
	sort.Ints(got)
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// subsetIDs reports whether every match id is among the wanted ids.
func subsetIDs(matches []lm.Match[lm.Vector], want []int) bool {
	in := make(map[int]bool, len(want))
	for _, id := range want {
		in[id] = true
	}
	for _, m := range matches {
		if !in[m.ID] {
			return false
		}
	}
	return true
}

func dist(a, b lm.Vector) float64 {
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
