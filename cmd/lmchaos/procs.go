package main

// The -procs mode: the chaos soak over real OS processes. Instead of
// one live in-process overlay, it builds cmd/lmnode, boots a ring of N
// processes linked over localhost TCP, and drives brute-force-verified
// range queries through the TCP client protocol while a churn loop
// SIGKILLs ring members mid-soak and restarts them on the same
// address. The contract is the same as the in-process soak — Complete
// results must match a brute-force scan exactly, incomplete ones must
// be honest subsets — plus recovery: after churn ends, every member
// must again serve Complete ∧ exact answers. The injected fault here
// is process death itself; frame-drop/conn-kill knobs apply to the
// in-process soak (the library path is shared, see runtime.LinkFaults).

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"landmarkdht/internal/runtime/netrt"
)

// procOpts carries the flag subset the multi-process soak uses.
type procOpts struct {
	n        int
	seed     int64
	queries  int
	clients  int
	churn    int
	objects  int
	dim      int
	durable  bool
	replicas int
	killDead bool
}

// ringProc is one lmnode OS process pinned to a ring slot. The slot's
// address never changes: a restarted process resumes the same ring
// identity.
type ringProc struct {
	cmd *exec.Cmd
}

// procRing owns the process table. The churn loop replaces entries
// while query workers read addresses, hence the lock.
type procRing struct {
	bin      string
	args     []string // corpus args shared by every member
	dataDirs []string // per-slot durable dirs, nil when -durable is off

	mu    sync.Mutex
	procs []*ringProc
}

func realProcs(o procOpts) int {
	tmp, err := os.MkdirTemp("", "lmchaos-procs-")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: %v\n", err)
		return 2
	}
	defer os.RemoveAll(tmp) //lint:allow errdrop best-effort cleanup of the soak's temp dir at exit

	ring := &procRing{
		bin: filepath.Join(tmp, "lmnode"),
		args: []string{
			"-seed", strconv.FormatInt(o.seed, 10),
			"-metric", "euclid",
			"-objects", strconv.Itoa(o.objects),
			"-dim", strconv.Itoa(o.dim),
			"-replicas", strconv.Itoa(o.replicas),
		},
		procs: make([]*ringProc, o.n),
	}
	if o.durable {
		ring.dataDirs = make([]string, o.n)
		for i := range ring.dataDirs {
			ring.dataDirs[i] = filepath.Join(tmp, fmt.Sprintf("data-%d", i))
		}
	}
	defer ring.killAll()

	buildArgs := []string{"build"}
	if raceBuild {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, "-o", ring.bin, "landmarkdht/cmd/lmnode")
	build := exec.Command("go", buildArgs...)
	if out, err := build.CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: build lmnode: %v\n%s", err, out)
		return 2
	}

	// Reserve one localhost port per slot so every member has a stable
	// address before any process starts: restarts reuse the slot's
	// address, which is the node's ring identity.
	addrs := make([]string, o.n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmchaos: reserve port: %v\n", err)
			return 2
		}
		addrs[i] = ln.Addr().String()
		_ = ln.Close() //lint:allow errdrop port-reservation probe: the listener existed only to pick a free port
	}
	for i, addr := range addrs {
		join := ""
		if i > 0 {
			join = addrs[0]
		}
		p, err := ring.spawn(i, addr, join)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmchaos: start member %d: %v\n", i, err)
			return 2
		}
		ring.set(i, p)
	}
	fmt.Printf("lmchaos: %d lmnode processes up (race build: %v, durable: %v), %d objects (dim %d)\n",
		o.n, raceBuild, o.durable, o.objects, o.dim)

	data := netrt.DataConfig{Metric: "euclid", Seed: o.seed, Objects: o.objects, Dim: o.dim}
	ds, err := netrt.BuildDataset(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lmchaos: %v\n", err)
		return 2
	}

	// Converge: every member must see the full ring before the soak.
	for i := 0; i < o.n; i++ {
		if err := waitMembers(addrs[i], o.n, 30*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "lmchaos: member %d: %v\n", i, err)
			return 2
		}
	}
	fmt.Printf("lmchaos: ring converged: all %d members see %d members\n", o.n, o.n)

	// Churn loop: SIGKILL a random member, leave it dead for a window,
	// restart it on the same address joined to a survivor. Query
	// workers run until the cycles are done, so every kill lands in
	// the middle of live query traffic.
	churnOver := make(chan struct{})
	churnErr := make(chan error, 1)
	kills := 0
	go func() {
		defer close(churnOver)
		crng := rand.New(rand.NewSource(o.seed + 41))
		for i := 0; i < o.churn; i++ {
			time.Sleep(500 * time.Millisecond)
			victim := crng.Intn(o.n)
			ring.kill(victim)
			kills++
			fmt.Printf("lmchaos: SIGKILLed member %d (%s)\n", victim, addrs[victim])
			time.Sleep(500 * time.Millisecond)
			join := addrs[(victim+1)%o.n]
			p, err := ring.spawn(victim, addrs[victim], join)
			if err != nil {
				churnErr <- fmt.Errorf("restart member %d: %w", victim, err)
				return
			}
			ring.set(victim, p)
			if o.durable {
				// The restarted member must have come back through the
				// store path. A silent fall-back to corpus regeneration
				// would still answer queries correctly — only this check
				// catches it, so it is a hard failure, not a warning.
				if err := assertRecovered(addrs[victim], 15*time.Second); err != nil {
					churnErr <- fmt.Errorf("member %d restarted without WAL recovery: %w", victim, err)
					return
				}
				fmt.Printf("lmchaos: restarted member %d on %s (recovered from WAL)\n", victim, addrs[victim])
			} else {
				fmt.Printf("lmchaos: restarted member %d on %s\n", victim, addrs[victim])
			}
		}
	}()

	// Query workers: each keeps a client to one slot, redialing when a
	// kill takes its connection down, and verifies every answer. A
	// worker runs at least its share of -queries and keeps going until
	// churn has finished, so the soak always overlaps the kills.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		nDone    int
		complete int
		failures int
	)
	perClient := o.queries / o.clients
	if perClient == 0 {
		perClient = 1
	}
	start := time.Now()
	for c := 0; c < o.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(o.seed + 2000 + int64(c)))
			addr := addrs[c%o.n]
			var cl *netrt.Client
			defer func() {
				if cl != nil {
					cl.Close()
				}
			}()
			var local struct{ n, complete, failures int }
		soak:
			for i := 0; ; i++ {
				if i >= perClient {
					select {
					case <-churnOver:
						break soak
					default:
					}
				}
				if cl == nil {
					var derr error
					cl, derr = dialRetry(addr, 15*time.Second)
					if derr != nil {
						// The slot stayed dead past churn: a soak
						// failure, not an honest fault.
						local.failures++
						break soak
					}
				}
				qobj := ds.RandomQuery(crng)
				r := 0.6 + 0.5*crng.Float64()
				out, err := cl.Query(qobj, r, 15*time.Second)
				if err != nil {
					// The member died mid-query (churn). Drop the
					// connection and redial: process death is the
					// injected fault, not a contract violation.
					cl.Close()
					cl = nil
					continue
				}
				local.n++
				want, err := ds.BruteForce(qobj, r)
				if err != nil {
					local.failures++
					continue
				}
				if out.Complete {
					local.complete++
					if !sameEntries(out.Entries, want) {
						fmt.Fprintf(os.Stderr,
							"lmchaos: FAIL: complete result disagrees with brute force (%d got, %d want)\n",
							len(out.Entries), len(want))
						local.failures++
					}
				} else if !subsetEntries(out.Entries, want) {
					fmt.Fprintln(os.Stderr,
						"lmchaos: FAIL: incomplete result is not a subset of the exact answer")
					local.failures++
				}
			}
			mu.Lock()
			nDone += local.n
			complete += local.complete
			failures += local.failures
			mu.Unlock()
		}(c)
	}
	wg.Wait()
	<-churnOver
	select {
	case err := <-churnErr:
		fmt.Fprintf(os.Stderr, "lmchaos: FAIL: %v\n", err)
		return 1
	default:
	}
	elapsed := time.Since(start)
	fmt.Printf("lmchaos: %d verified queries in %v (%d complete-and-exact, %d honest-incomplete, %d SIGKILLs)\n",
		nDone, elapsed.Round(time.Millisecond), complete, nDone-complete, kills)
	if o.churn > 0 && kills == 0 {
		fmt.Fprintln(os.Stderr, "lmchaos: FAIL: churn requested but no member was killed")
		return 1
	}

	// Recovery: with churn over, every member must serve Complete ∧
	// exact again — the ring healed, links redialed, views regossiped.
	rng := rand.New(rand.NewSource(o.seed + 77))
	for i := 0; i < o.n; i++ {
		if err := waitRecovered(addrs[i], ds, rng, 60*time.Second); err != nil {
			fmt.Fprintf(os.Stderr, "lmchaos: FAIL: member %d never recovered: %v\n", i, err)
			return 1
		}
	}
	fmt.Printf("lmchaos: recovery verified: all %d members serve complete exact answers\n", o.n)

	if o.killDead {
		if err := killDeadPhase(o, ring, addrs, ds); err != nil {
			fmt.Fprintf(os.Stderr, "lmchaos: FAIL: kill-dead: %v\n", err)
			return 1
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "lmchaos: FAIL: %d completeness violations\n", failures)
		return 1
	}
	if complete == 0 {
		fmt.Fprintln(os.Stderr, "lmchaos: FAIL: no query completed during the soak")
		return 1
	}
	fmt.Println("lmchaos: PASS: multi-process completeness contract held under SIGKILL churn")
	return 0
}

// killDeadPhase is the availability soak: SIGKILL one member and leave
// it dead. Once every survivor's failure detector marks it down, every
// query must still come back Complete and brute-force exact — answered
// from the replica copies streamed before the kill — and the repair
// counters must show the copies arrived over the bulk-transfer path
// (aggregate Repairs > 0, RepairChunks > 0) with the point-wise
// fallback counter at exactly zero. Any regression fails the soak.
func killDeadPhase(o procOpts, ring *procRing, addrs []string, ds *netrt.Dataset) error {
	n := len(addrs)
	wantSynced := o.replicas
	if wantSynced > n-1 {
		wantSynced = n - 1
	}
	for i, addr := range addrs {
		if err := waitSyncedOwners(addr, wantSynced, 60*time.Second); err != nil {
			return fmt.Errorf("member %d (%s) never synced its replica copies: %w", i, addr, err)
		}
	}
	fmt.Printf("lmchaos: kill-dead: every member holds %d synced region copies\n", wantSynced)

	victim := n - 1
	victimID := netrt.NodeID(addrs[victim])
	ring.kill(victim)
	fmt.Printf("lmchaos: kill-dead: SIGKILLed member %d (%s, node %016x) — staying dead\n",
		victim, addrs[victim], victimID)

	survivors := make([]int, 0, n-1)
	for i := range addrs {
		if i != victim {
			survivors = append(survivors, i)
		}
	}
	for _, i := range survivors {
		if err := waitDown(addrs[i], victimID, 60*time.Second); err != nil {
			return fmt.Errorf("member %d (%s) never marked node %016x down: %w", i, addrs[i], victimID, err)
		}
	}
	fmt.Printf("lmchaos: kill-dead: all %d survivors marked the victim down\n", len(survivors))

	cls := make([]*netrt.Client, len(survivors))
	for j, i := range survivors {
		cl, err := dialRetry(addrs[i], 10*time.Second)
		if err != nil {
			return fmt.Errorf("dial survivor %d (%s): %w", i, addrs[i], err)
		}
		defer cl.Close()
		cls[j] = cl
	}

	const deadQueries = 40
	rng := rand.New(rand.NewSource(o.seed + 93))
	for q := 0; q < deadQueries; q++ {
		j := q % len(cls)
		qobj := ds.RandomQuery(rng)
		r := 0.6 + 0.5*rng.Float64()
		out, err := cls[j].Query(qobj, r, 15*time.Second)
		if err != nil {
			return fmt.Errorf("query %d on member %d with the victim dead: %w", q, survivors[j], err)
		}
		if !out.Complete {
			return fmt.Errorf("query %d on member %d came back incomplete (dropped %d) while the victim was dead — availability regression",
				q, survivors[j], out.Dropped)
		}
		want, err := ds.BruteForce(qobj, r)
		if err != nil {
			return err
		}
		if !sameEntries(out.Entries, want) {
			return fmt.Errorf("query %d on member %d: complete failover answer disagrees with brute force (%d got, %d want)",
				q, survivors[j], len(out.Entries), len(want))
		}
	}

	var repairs, chunks, fallback int64
	for j, i := range survivors {
		info, err := cls[j].Info(2 * time.Second)
		if err != nil {
			return fmt.Errorf("info from survivor %d: %w", i, err)
		}
		repairs += info.Repairs
		chunks += info.RepairChunks
		fallback += info.RepairFallback
	}
	if repairs == 0 || chunks == 0 {
		return fmt.Errorf("no bulk repair streams were installed (repairs=%d, chunks=%d)", repairs, chunks)
	}
	if fallback != 0 {
		return fmt.Errorf("repairs used the point-wise fallback %d times; every repair must ride the bulk-transfer path", fallback)
	}
	fmt.Printf("lmchaos: kill-dead: %d queries complete-and-exact with a dead member (repairs=%d, chunks=%d, fallback=0)\n",
		deadQueries, repairs, chunks)

	// Bring the victim back so the soak exits with a whole ring.
	p, err := ring.spawn(victim, addrs[victim], addrs[survivors[0]])
	if err != nil {
		return fmt.Errorf("restart victim: %w", err)
	}
	ring.set(victim, p)
	if ring.dataDirs != nil {
		if err := assertRecovered(addrs[victim], 15*time.Second); err != nil {
			return fmt.Errorf("victim restarted without WAL recovery: %w", err)
		}
	}
	if err := waitRecovered(addrs[victim], ds, rng, 60*time.Second); err != nil {
		return fmt.Errorf("victim never healed after restart: %w", err)
	}
	fmt.Println("lmchaos: kill-dead: victim restarted and healed")
	return nil
}

// waitSyncedOwners blocks until the node at addr reports at least want
// synced replica copies.
func waitSyncedOwners(addr string, want int, window time.Duration) error {
	cl, err := dialRetry(addr, window)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(window)
	for {
		info, err := cl.Info(2 * time.Second)
		if err != nil {
			return err
		}
		if info.SyncedOwners >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("stuck at %d of %d synced owners", info.SyncedOwners, want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitDown blocks until the node at addr marks id down.
func waitDown(addr string, id uint64, window time.Duration) error {
	cl, err := dialRetry(addr, window)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(window)
	for {
		info, err := cl.Info(2 * time.Second)
		if err != nil {
			return err
		}
		for _, d := range info.Down {
			if d == id {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("down set %v never included the victim", info.Down)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// spawn launches one lmnode for ring slot i on addr and waits for its
// ready line. With -durable, the slot's data dir rides along so a
// restart recovers the member's corpus from its WAL.
func (r *procRing) spawn(i int, addr, join string) (*ringProc, error) {
	args := append([]string{"-listen", addr}, r.args...)
	if join != "" {
		args = append(args, "-join", join)
	}
	if r.dataDirs != nil {
		args = append(args, "-data-dir", r.dataDirs[i])
	}
	cmd := exec.Command(r.bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	// Each member gets its own ready deadline; the error names the slot
	// that never came up, so a wedged spawn in a large ring is
	// attributable instead of surfacing as a generic timeout downstream.
	ready := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if strings.Contains(sc.Text(), "ready addr=") {
				ready <- nil
				break
			}
		}
		select {
		case ready <- fmt.Errorf("ring slot %d: lmnode on %s exited before printing its ready line", i, addr):
		default:
		}
		for sc.Scan() { // keep draining so the child never blocks
		}
	}()
	select {
	case err := <-ready:
		if err != nil {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, err
		}
	case <-time.After(readyTimeout):
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("ring slot %d: lmnode on %s never printed its ready line within %v", i, addr, readyTimeout)
	}
	return &ringProc{cmd: cmd}, nil
}

// readyTimeout bounds how long one spawned lmnode may take to print its
// ready line (corpus build or WAL recovery included).
const readyTimeout = 20 * time.Second

func (r *procRing) set(i int, p *ringProc) {
	r.mu.Lock()
	r.procs[i] = p
	r.mu.Unlock()
}

// kill SIGKILLs slot i's process and reaps it.
func (r *procRing) kill(i int) {
	r.mu.Lock()
	p := r.procs[i]
	r.procs[i] = nil
	r.mu.Unlock()
	if p != nil {
		p.cmd.Process.Kill()
		p.cmd.Wait()
	}
}

func (r *procRing) killAll() {
	r.mu.Lock()
	procs := append([]*ringProc(nil), r.procs...)
	for i := range r.procs {
		r.procs[i] = nil
	}
	r.mu.Unlock()
	for _, p := range procs {
		if p != nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	}
}

// dialRetry dials a node's client port until it answers or the window
// closes (the member may be mid-restart).
func dialRetry(addr string, window time.Duration) (*netrt.Client, error) {
	deadline := time.Now().Add(window)
	for {
		cl, err := netrt.Dial(addr, 2*time.Second)
		if err == nil {
			return cl, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// assertRecovered dials a freshly restarted member and demands that it
// reports Recovered=true — its corpus came off its WAL, not from a
// regeneration fallback.
func assertRecovered(addr string, window time.Duration) error {
	cl, err := dialRetry(addr, window)
	if err != nil {
		return err
	}
	defer cl.Close()
	info, err := cl.Info(2 * time.Second)
	if err != nil {
		return err
	}
	if !info.Recovered {
		return fmt.Errorf("Info reports Recovered=false (store=%d, replayed=%d)", info.Store, info.Replayed)
	}
	if info.Replayed == 0 {
		return fmt.Errorf("Info reports recovery but zero replayed records")
	}
	return nil
}

// waitMembers blocks until the node at addr sees want ring members.
func waitMembers(addr string, want int, window time.Duration) error {
	cl, err := dialRetry(addr, window)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(window)
	for {
		info, err := cl.Info(2 * time.Second)
		if err != nil {
			return err
		}
		if len(info.Members) >= want {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("view stuck at %d of %d members", len(info.Members), want)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitRecovered queries one member until an answer comes back Complete
// and brute-force exact.
func waitRecovered(addr string, ds *netrt.Dataset, rng *rand.Rand, window time.Duration) error {
	cl, err := dialRetry(addr, window)
	if err != nil {
		return err
	}
	defer cl.Close()
	deadline := time.Now().Add(window)
	for {
		qobj := ds.RandomQuery(rng)
		r := 0.6 + 0.5*rng.Float64()
		out, qerr := cl.Query(qobj, r, 10*time.Second)
		if qerr == nil && out.Complete {
			want, err := ds.BruteForce(qobj, r)
			if err != nil {
				return err
			}
			if !sameEntries(out.Entries, want) {
				return fmt.Errorf("complete result disagrees with brute force (%d got, %d want)",
					len(out.Entries), len(want))
			}
			return nil
		}
		if time.Now().After(deadline) {
			if qerr != nil {
				return qerr
			}
			return fmt.Errorf("answers still incomplete")
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// sameEntries reports whether got covers exactly the brute-force
// answer (both sorted by object id).
func sameEntries(got, want []netrt.ResultEntry) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Obj != want[i].Obj {
			return false
		}
	}
	return true
}

// subsetEntries reports whether every got entry is in the brute-force
// answer.
func subsetEntries(got, want []netrt.ResultEntry) bool {
	have := make(map[int32]bool, len(want))
	for _, e := range want {
		have[e.Obj] = true
	}
	for _, e := range got {
		if !have[e.Obj] {
			return false
		}
	}
	return true
}
