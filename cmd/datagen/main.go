// Command datagen generates the evaluation datasets as CSV/TSV on
// stdout: the §4.2 clustered synthetic vectors, the §4.3 TREC-AP
// substitute corpus (term-weight postings), or DNA-like strings.
//
// Usage:
//
//	datagen -kind synthetic -n 1000 -dim 10 > syn.csv
//	datagen -kind corpus -n 500 > docs.tsv
//	datagen -kind dna -n 200 -len 60 > dna.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"landmarkdht/internal/dataset"
)

func main() {
	var (
		kind     = flag.String("kind", "synthetic", "dataset kind: synthetic, corpus, dna")
		n        = flag.Int("n", 1000, "number of objects")
		dim      = flag.Int("dim", 100, "dimensions (synthetic)")
		clusters = flag.Int("clusters", 10, "clusters (synthetic)")
		dev      = flag.Float64("dev", 20, "cluster deviation (synthetic)")
		vocab    = flag.Int("vocab", 50000, "vocabulary size (corpus)")
		length   = flag.Int("len", 60, "sequence length (dna)")
		families = flag.Int("families", 8, "sequence families (dna)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(os.Stdout)
	// A dropped flush error would truncate the emitted dataset while
	// still exiting 0; check it.
	defer func() {
		if err := w.Flush(); err != nil {
			fail(err)
		}
	}()

	switch *kind {
	case "synthetic":
		data, err := dataset.Clustered(dataset.ClusteredConfig{
			N: *n, Dim: *dim, Lo: 0, Hi: 100, Clusters: *clusters, Dev: *dev, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		for _, v := range data {
			for i, x := range v {
				if i > 0 {
					fmt.Fprint(w, ",")
				}
				fmt.Fprintf(w, "%.4f", x)
			}
			fmt.Fprintln(w)
		}
	case "corpus":
		c, err := dataset.NewCorpus(dataset.CorpusConfig{Docs: *n, Vocab: *vocab, Seed: *seed})
		if err != nil {
			fail(err)
		}
		for di, d := range c.Docs {
			fmt.Fprintf(w, "doc%d\ttopic%d", di, c.Topic[di])
			for i, term := range d.Idx {
				fmt.Fprintf(w, "\t%d:%.4f", term, d.Val[i])
			}
			fmt.Fprintln(w)
		}
	case "dna":
		seqs, fams, err := dataset.DNA(dataset.DNAConfig{
			N: *n, Length: *length, Families: *families, MutationRate: 0.05, Seed: *seed,
		})
		if err != nil {
			fail(err)
		}
		for i, s := range seqs {
			fmt.Fprintf(w, "%d\t%s\n", fams[i], s)
		}
	default:
		fail(fmt.Errorf("unknown kind %q", *kind))
	}
}
