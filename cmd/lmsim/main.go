// Command lmsim regenerates the paper's tables and figures (and the
// DESIGN.md ablations) from the simulator.
//
// Usage:
//
//	lmsim -exp fig2                 # one experiment at the small scale
//	lmsim -exp all -scale paper     # full §4 reproduction (slow)
//	lmsim -exp fig5 -nodes 512      # override individual knobs
//
// Experiments: table1 table2 fig2 fig3 fig4 fig5 fig6 rotation naive
// lbsweep ksweep pns churn faults mapping all.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"landmarkdht/internal/dataset"
	"landmarkdht/internal/harness"
)

// main defers to realMain so the pprof defers run before the process
// exits with the right status code.
func main() {
	os.Exit(realMain())
}

func realMain() int {
	var (
		exp     = flag.String("exp", "all", "experiment id: table1 table2 fig2 fig3 fig4 fig5 fig6 rotation naive lbsweep ksweep pns churn faults mapping all")
		scaleNm = flag.String("scale", "small", "scale preset: bench, small, paper")
		nodes   = flag.Int("nodes", 0, "override overlay size")
		dataN   = flag.Int("data", 0, "override synthetic dataset size")
		queries = flag.Int("queries", 0, "override query count")
		seed    = flag.Int64("seed", 0, "override random seed")
		trials  = flag.Int("trials", 1, "repeat cell experiments (fig2/fig3/fig5/naive/ksweep) over N seeds and report mean±std")
		jsonOut = flag.Bool("json", false, "emit machine-readable JSON reports instead of tables")
		lossArg = flag.String("loss", "0,0.05,0.1,0.2", "comma-separated message loss rates for -exp faults")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lmsim: %v\n", err)
			return 2
		}
		defer f.Close() //lint:allow errdrop read-back is pprof's; a failed close of the profile costs diagnostics, not data
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "lmsim: %v\n", err)
			return 2
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "lmsim: %v\n", err)
				return
			}
			defer f.Close() //lint:allow errdrop heap profile is diagnostics; WriteHeapProfile's error is the one that matters and is checked
			runtime.GC()    // collect garbage so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "lmsim: %v\n", err)
			}
		}()
	}

	var losses []float64
	for _, s := range strings.Split(*lossArg, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil || v < 0 || v >= 1 {
			fmt.Fprintf(os.Stderr, "lmsim: bad loss rate %q (want 0 <= rate < 1)\n", s)
			return 2
		}
		losses = append(losses, v)
	}

	var scale harness.Scale
	switch *scaleNm {
	case "bench":
		scale = harness.BenchScale()
	case "small":
		scale = harness.SmallScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "lmsim: unknown scale %q\n", *scaleNm)
		return 2
	}
	if *nodes > 0 {
		scale.Nodes = *nodes
	}
	if *dataN > 0 {
		scale.DataN = *dataN
	}
	if *queries > 0 {
		scale.Queries = *queries
	}
	if *seed != 0 {
		scale.Seed = *seed
	}

	emit := func(rep *harness.Report) error {
		if *jsonOut {
			return rep.WriteJSON(os.Stdout)
		}
		return nil
	}
	cellExperiment := func(id, title string, withLB bool, fn func(harness.Scale) ([]harness.Cell, error)) error {
		if *trials > 1 {
			tcells, err := harness.Trials(scale, *trials, fn)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Trial: tcells})
			}
			harness.PrintTrials(os.Stdout, title, tcells)
			return nil
		}
		cells, err := fn(scale)
		if err != nil {
			return err
		}
		if *jsonOut {
			return emit(&harness.Report{Experiment: id, Scale: scale, Cells: cells})
		}
		if withLB {
			harness.PrintCellsWithLB(os.Stdout, title, cells)
		} else {
			harness.PrintCells(os.Stdout, title, cells)
		}
		return nil
	}

	run := func(id string) error {
		// Real elapsed time of the experiment process, not simulated
		// time: the one legitimate wall-clock read in the tree.
		start := time.Now() //lint:allow wallclock real elapsed time of the experiment process, not simulated time
		defer func() {
			if !*jsonOut {
				//lint:allow wallclock reporting the same real elapsed time measured above
				fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
			}
		}()
		switch id {
		case "table1":
			cfg := dataset.Table1()
			cfg.N = scale.DataN
			cfg.Dim = scale.Dim
			if !*jsonOut {
				harness.PrintTable1(os.Stdout, cfg)
			}
			return nil
		case "table2":
			st, err := harness.Table2(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Table2: st})
			}
			harness.PrintTable2(os.Stdout, st)
			return nil
		case "fig2":
			return cellExperiment(id, "Figure 2: synthetic dataset, no load balancing", false, harness.Figure2)
		case "fig3":
			return cellExperiment(id, "Figure 3: synthetic dataset, with load balancing (δ=0, P_l=4)", true, harness.Figure3)
		case "fig4":
			curves, err := harness.Figure4(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Curves: curves})
			}
			harness.PrintLoadCurves(os.Stdout, "Figure 4: load distribution on nodes (synthetic, with LB)", curves)
			return nil
		case "fig5":
			return cellExperiment(id, "Figure 5: TREC-AP substitute, with load balancing", true, harness.Figure5)
		case "fig6":
			curves, err := harness.Figure6(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Curves: curves})
			}
			harness.PrintLoadCurves(os.Stdout, "Figure 6: load distribution (TREC-AP substitute)", curves)
			return nil
		case "rotation":
			res, err := harness.AblationRotation(scale, 3)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Rotation: res})
			}
			harness.PrintRotation(os.Stdout, res)
			return nil
		case "naive":
			return cellExperiment(id, "Ablation A2: embedded-tree routing vs naive per-node routing", false, harness.AblationNaive)
		case "lbsweep":
			cells, err := harness.AblationLB(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, LBSweep: cells})
			}
			harness.PrintLBSweep(os.Stdout, cells)
			return nil
		case "ksweep":
			return cellExperiment(id, "Ablation A4: landmark count sweep (range factor 2%)", false, harness.AblationK)
		case "mapping":
			cells, err := harness.AblationMapping(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Mapping: cells})
			}
			harness.PrintMapping(os.Stdout, cells)
			return nil
		case "churn":
			cells, err := harness.AblationChurn(scale)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Churn: cells})
			}
			harness.PrintChurn(os.Stdout, cells)
			return nil
		case "faults":
			cells, err := harness.AblationFaults(scale, losses)
			if err != nil {
				return err
			}
			if *jsonOut {
				return emit(&harness.Report{Experiment: id, Scale: scale, Faults: cells})
			}
			harness.PrintFaults(os.Stdout, cells)
			return nil
		case "pns":
			return cellExperiment(id, "Ablation A5: proximity neighbor selection on/off", false, harness.AblationPNS)
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
			"rotation", "naive", "lbsweep", "ksweep", "pns", "churn", "faults", "mapping"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "lmsim: %s: %v\n", id, err)
			return 1
		}
	}
	return 0
}
