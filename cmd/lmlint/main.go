// Command lmlint is the project's determinism linter: a multichecker
// that runs the custom analyzers under internal/analysis over the
// module and exits non-zero on any finding.
//
// The analyzers enforce the simulator's reproducibility contract (a
// sim.Engine run is single-threaded and bit-for-bit deterministic per
// seed):
//
//	detrand      no math/rand global-source functions
//	wallclock    no time.Now/Sleep/... in simulated code
//	maporder     no order-sensitive effects inside range-over-map
//	nogoroutine  no goroutines/channels/sync in engine-owned code
//
// and the live runtime's concurrency contract (call-graph-aware; see
// internal/analysis's CallGraph and //lint:context executor roots):
//
//	execblock    no blocking ops reachable from executor context
//	lockheld     no mutex held across a blocking operation
//	errdrop      no discarded errors on wire/conn paths
//	allowaudit   every //lint:allow is known, reasoned, and live
//
// Usage:
//
//	lmlint [-run detrand,maporder] [packages]
//
// With no package arguments (or "./..."), the whole module is checked.
// A package argument of the form ./dir or ./dir/... restricts the run.
// Violations are suppressed at the source with //lint:allow <analyzer>
// (same line or the line above) or file-wide with //lint:file-allow;
// see internal/analysis.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"landmarkdht/internal/analysis"
	"landmarkdht/internal/analysis/allowaudit"
	"landmarkdht/internal/analysis/detrand"
	"landmarkdht/internal/analysis/errdrop"
	"landmarkdht/internal/analysis/execblock"
	"landmarkdht/internal/analysis/loader"
	"landmarkdht/internal/analysis/lockheld"
	"landmarkdht/internal/analysis/maporder"
	"landmarkdht/internal/analysis/nogoroutine"
	"landmarkdht/internal/analysis/wallclock"
)

var all = []*analysis.Analyzer{
	detrand.Analyzer,
	wallclock.Analyzer,
	maporder.Analyzer,
	nogoroutine.Analyzer,
	execblock.Analyzer,
	lockheld.Analyzer,
	errdrop.Analyzer,
	allowaudit.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	verbose := flag.Bool("v", false, "list packages as they are checked")
	flag.Usage = usage
	flag.Parse()

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmlint:", err)
		os.Exit(2)
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmlint:", err)
		os.Exit(2)
	}
	root, err := loader.ModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmlint:", err)
		os.Exit(2)
	}
	fset, pkgs, err := loader.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmlint:", err)
		os.Exit(2)
	}
	match, err := packageFilter(root, cwd, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lmlint:", err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		if !match(pkg.Dir) {
			continue
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "lmlint: checking", pkg.Path)
		}
		for _, a := range analyzers {
			for _, d := range analysis.RunPackage(a, fset, pkg.Files, pkg.Types, pkg.Info) {
				d.Pos.Filename = relPath(cwd, d.Pos.Filename)
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lmlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: lmlint [-run names] [-v] [packages]\n\nanalyzers:\n")
	for _, a := range all {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	flag.PrintDefaults()
}

func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	if runList == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runList, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// packageFilter interprets the package arguments: none or "./..." means
// the whole module; "./dir" means exactly that directory; "./dir/..."
// means that subtree.
func packageFilter(root, cwd string, args []string) (func(dir string) bool, error) {
	if len(args) == 0 {
		return func(string) bool { return true }, nil
	}
	type pat struct {
		dir     string
		subtree bool
	}
	var pats []pat
	for _, arg := range args {
		subtree := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			arg, subtree = rest, true
		}
		if arg == "." && subtree && filepath.Clean(cwd) == root {
			return func(string) bool { return true }, nil
		}
		dir := arg
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		if _, err := os.Stat(dir); err != nil {
			return nil, fmt.Errorf("package pattern %q: %w", arg, err)
		}
		pats = append(pats, pat{dir: filepath.Clean(dir), subtree: subtree})
	}
	return func(dir string) bool {
		dir = filepath.Clean(dir)
		for _, p := range pats {
			if dir == p.dir {
				return true
			}
			if p.subtree && strings.HasPrefix(dir, p.dir+string(filepath.Separator)) {
				return true
			}
		}
		return false
	}, nil
}

func relPath(cwd, path string) string {
	if rel, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
