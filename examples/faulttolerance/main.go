// Faulttolerance: successor-list replication keeps similarity search
// exact through simultaneous node crashes, and the reliable-delivery
// layer (ack/timeout/retry with successor failover) keeps it exact
// through injected message loss — the fire-and-forget contrast drops
// subqueries and loses matches.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"landmarkdht"
)

func main() {
	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 64, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A clustered dataset.
	rng := rand.New(rand.NewSource(7))
	data := make([]landmarkdht.Vector, 4000)
	for i := range data {
		base := float64(rng.Intn(4)) * 25
		v := make(landmarkdht.Vector, 10)
		for j := range v {
			v[j] = base + rng.NormFloat64()*3
		}
		data[i] = v
	}
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("resilient", 10, -20, 120),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Replicate every entry onto the 2 successors of its primary node.
	if err := ix.Replicate(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors on %d nodes, 3-way replicated\n", ix.Len(), p.Nodes())

	q := data[0]
	baseline, _, trace, err := ix.RangeSearchTraced(q, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbefore crashes: %d matches; query touched %d nodes, %d answer steps, depth %d\n",
		len(baseline), len(trace.Nodes()), trace.Count("answer"), trace.MaxDepth())

	// Kill 8 of 64 nodes at once. No recovery step runs: the replicas
	// on the successors answer in the dead primaries' place.
	crashed := p.Crash(8)
	fmt.Printf("\ncrashed %d nodes (%d remain)\n", crashed, p.Nodes())

	after, stats, trace2, err := ix.RangeSearchTraced(q, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crashes: %d matches (recall %d/%d), %d nodes answered in %v\n",
		len(after), len(after), len(baseline), stats.IndexNodes, stats.MaxLatency)

	if len(after) == len(baseline) {
		fmt.Println("\nno results lost: the first replica of every key became its new successor")
	} else {
		fmt.Printf("\nlost %d results (replication factor exceeded by correlated failures)\n",
			len(baseline)-len(after))
	}
	fmt.Println("\nexecution trace of the post-crash query (first 6 steps):")
	for i, e := range trace2.Events {
		if i >= 6 {
			break
		}
		fmt.Println(" ", e)
	}

	// Part two: a lossy network. The same deployment under 10% message
	// loss, once fire-and-forget and once with the reliability layer
	// (ack, timeout, bounded retransmission with successor failover).
	fmt.Println("\n--- 10% message loss ---")
	for _, retries := range []int{0, 3} {
		lossy, err := landmarkdht.New(landmarkdht.Options{
			Nodes: 64, Seed: 7, LossRate: 0.10,
			Retry: landmarkdht.RetryConfig{MaxRetries: retries},
		})
		if err != nil {
			log.Fatal(err)
		}
		lx, err := landmarkdht.AddIndex(lossy,
			landmarkdht.EuclideanSpace("resilient", 10, -20, 120),
			data, landmarkdht.DenseMean,
			landmarkdht.IndexOptions{Landmarks: 5})
		if err != nil {
			log.Fatal(err)
		}
		// A batch of queries, so the loss rate has room to bite. Every
		// result now says whether it is exact: Complete results carry
		// the full answer, incomplete ones list how much index space
		// went unanswered.
		total, retrans, incomplete, uncovered := 0, 0, 0, 0
		for i := 0; i < 25; i++ {
			matches, stats, err := lx.RangeSearch(data[i*37], 8)
			if err != nil {
				log.Fatal(err)
			}
			total += len(matches)
			retrans += stats.Retries
			if !stats.Complete {
				incomplete++
				uncovered += stats.UncoveredRegions
			}
		}
		rel := lossy.Reliability()
		mode := "fire-and-forget"
		if retries > 0 {
			mode = fmt.Sprintf("retries (max %d)", retries)
		}
		fmt.Printf("%-16s %d matches over 25 queries, %d retransmissions, %d recovered, %d subqueries lost for good\n",
			mode+":", total, retrans, rel.Recovered, rel.Dropped)
		fmt.Printf("%-16s %d/25 results flagged incomplete (%d uncovered index regions)\n",
			"", incomplete, uncovered)
	}

	// Part three: tail-latency control. A deadline bounds every query's
	// total time — on expiry the query returns what it has, honestly
	// flagged — and hedging re-sends slow subqueries to the successor
	// replica so the deadline is rarely hit.
	fmt.Println("\n--- deadline + hedging under 20% loss ---")
	hedged, err := landmarkdht.New(landmarkdht.Options{
		Nodes: 64, Seed: 7,
		Faults:   &landmarkdht.FaultOptions{Drop: 0.20},
		Retry:    landmarkdht.RetryConfig{MaxRetries: 2},
		Deadline: 20 * time.Second,
		Hedge:    landmarkdht.HedgeConfig{Delay: 2 * time.Second},
	})
	if err != nil {
		log.Fatal(err)
	}
	hx, err := landmarkdht.AddIndex(hedged,
		landmarkdht.EuclideanSpace("resilient", 10, -20, 120),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := hx.Replicate(2); err != nil {
		log.Fatal(err)
	}
	complete := 0
	for i := 0; i < 25; i++ {
		_, stats, err := hx.RangeSearch(data[i*37], 8)
		if err != nil {
			log.Fatal(err)
		}
		if stats.Complete {
			complete++
		}
	}
	rel := hedged.Reliability()
	fmt.Printf("with hedging:     %d/25 results complete, %d hedged subqueries, %d retransmissions\n",
		complete, rel.Hedges, rel.RetriesIssued)
}
