// Faulttolerance: successor-list replication keeps similarity search
// exact through simultaneous node crashes, and the reliable-delivery
// layer (ack/timeout/retry with successor failover) keeps it exact
// through injected message loss — the fire-and-forget contrast drops
// subqueries and loses matches.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"landmarkdht"
)

func main() {
	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 64, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// A clustered dataset.
	rng := rand.New(rand.NewSource(7))
	data := make([]landmarkdht.Vector, 4000)
	for i := range data {
		base := float64(rng.Intn(4)) * 25
		v := make(landmarkdht.Vector, 10)
		for j := range v {
			v[j] = base + rng.NormFloat64()*3
		}
		data[i] = v
	}
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("resilient", 10, -20, 120),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Replicate every entry onto the 2 successors of its primary node.
	if err := ix.Replicate(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors on %d nodes, 3-way replicated\n", ix.Len(), p.Nodes())

	q := data[0]
	baseline, _, trace, err := ix.RangeSearchTraced(q, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbefore crashes: %d matches; query touched %d nodes, %d answer steps, depth %d\n",
		len(baseline), len(trace.Nodes()), trace.Count("answer"), trace.MaxDepth())

	// Kill 8 of 64 nodes at once. No recovery step runs: the replicas
	// on the successors answer in the dead primaries' place.
	crashed := p.Crash(8)
	fmt.Printf("\ncrashed %d nodes (%d remain)\n", crashed, p.Nodes())

	after, stats, trace2, err := ix.RangeSearchTraced(q, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crashes: %d matches (recall %d/%d), %d nodes answered in %v\n",
		len(after), len(after), len(baseline), stats.IndexNodes, stats.MaxLatency)

	if len(after) == len(baseline) {
		fmt.Println("\nno results lost: the first replica of every key became its new successor")
	} else {
		fmt.Printf("\nlost %d results (replication factor exceeded by correlated failures)\n",
			len(baseline)-len(after))
	}
	fmt.Println("\nexecution trace of the post-crash query (first 6 steps):")
	for i, e := range trace2.Events {
		if i >= 6 {
			break
		}
		fmt.Println(" ", e)
	}

	// Part two: a lossy network. The same deployment under 10% message
	// loss, once fire-and-forget and once with the reliability layer
	// (ack, timeout, bounded retransmission with successor failover).
	fmt.Println("\n--- 10% message loss ---")
	for _, retries := range []int{0, 3} {
		lossy, err := landmarkdht.New(landmarkdht.Options{
			Nodes: 64, Seed: 7, LossRate: 0.10,
			Retry: landmarkdht.RetryConfig{MaxRetries: retries},
		})
		if err != nil {
			log.Fatal(err)
		}
		lx, err := landmarkdht.AddIndex(lossy,
			landmarkdht.EuclideanSpace("resilient", 10, -20, 120),
			data, landmarkdht.DenseMean,
			landmarkdht.IndexOptions{Landmarks: 5})
		if err != nil {
			log.Fatal(err)
		}
		// A batch of queries, so the loss rate has room to bite.
		total, retrans := 0, 0
		for i := 0; i < 25; i++ {
			matches, stats, err := lx.RangeSearch(data[i*37], 8)
			if err != nil {
				log.Fatal(err)
			}
			total += len(matches)
			retrans += stats.Retries
		}
		rel := lossy.Reliability()
		mode := "fire-and-forget"
		if retries > 0 {
			mode = fmt.Sprintf("retries (max %d)", retries)
		}
		fmt.Printf("%-16s %d matches over 25 queries, %d retransmissions, %d recovered, %d subqueries lost for good\n",
			mode+":", total, retrans, rel.Recovered, rel.Dropped)
	}
}
