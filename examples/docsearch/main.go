// Docsearch: distributed document similarity search under the cosine
// angle metric (§4.3 of the paper) — the information-retrieval
// workload that motivates the architecture.
//
// A synthetic topical corpus stands in for the TREC-AP newswire; the
// index embeds each TF/IDF document vector by its angle to 10 k-means
// centroid landmarks, and short keyword queries retrieve the most
// similar documents from the overlay.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"landmarkdht"
)

const (
	vocab      = 30_000
	topics     = 12
	topicTerms = 250
	docs       = 6000
)

// makeCorpus builds a topical TF-weighted corpus: each document draws
// most of its terms from its topic's block plus background noise.
func makeCorpus(rng *rand.Rand) (corpus []landmarkdht.SparseVector, topicOf []int) {
	zipf := rand.NewZipf(rng, 1.1, 1, vocab-1)
	for d := 0; d < docs; d++ {
		topic := rng.Intn(topics)
		terms := map[uint32]float64{}
		size := 30 + rng.Intn(120)
		for len(terms) < size {
			var term uint32
			if rng.Float64() < 0.6 {
				term = uint32(vocab/4 + topic*topicTerms + rng.Intn(topicTerms))
			} else {
				term = uint32(zipf.Uint64())
			}
			terms[term] += 1 + float64(rng.Intn(3))
		}
		idx := make([]uint32, 0, len(terms))
		val := make([]float64, 0, len(terms))
		//lint:allow maporder NewSparseVector canonicalizes by sorting on term index
		for t, w := range terms {
			idx = append(idx, t)
			val = append(val, w)
		}
		sv, err := landmarkdht.NewSparseVector(idx, val)
		if err != nil {
			log.Fatal(err)
		}
		corpus = append(corpus, sv)
		topicOf = append(topicOf, topic)
	}
	return corpus, topicOf
}

// keywordQuery builds a short query vector from a few topic terms —
// the paper's TREC queries average 3.5 unique terms.
func keywordQuery(rng *rand.Rand, topic int) landmarkdht.SparseVector {
	n := 3 + rng.Intn(2)
	idx := make([]uint32, 0, n)
	val := make([]float64, 0, n)
	seen := map[uint32]bool{}
	for len(idx) < n {
		t := uint32(vocab/4 + topic*topicTerms + rng.Intn(topicTerms))
		if seen[t] {
			continue
		}
		seen[t] = true
		idx = append(idx, t)
		val = append(val, 1)
	}
	sv, err := landmarkdht.NewSparseVector(idx, val)
	if err != nil {
		log.Fatal(err)
	}
	return sv
}

func main() {
	rng := rand.New(rand.NewSource(11))
	corpus, topicOf := makeCorpus(rng)

	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 96, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	// K-means centroids make far better landmarks than raw documents
	// for sparse text (§4.3): averaging grows the term support.
	ix, err := landmarkdht.AddIndex(p, landmarkdht.CosineSpace("newswire"),
		corpus, landmarkdht.SparseMean,
		landmarkdht.IndexOptions{Landmarks: 10, SampleSize: 1000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d documents (%d topics) on %d nodes\n", ix.Len(), topics, p.Nodes())

	hits, total := 0, 0
	for trial := 0; trial < 5; trial++ {
		topic := rng.Intn(topics)
		q := keywordQuery(rng, topic)
		// Every index node returns its 10 best candidates within the
		// angle range; the querier merges them (the paper's protocol).
		matches, stats, err := ix.NearestSearch(q, 10, 0.35)
		if err != nil {
			log.Fatal(err)
		}
		onTopic := 0
		for _, m := range matches {
			if topicOf[m.ID] == topic {
				onTopic++
			}
		}
		hits += onTopic
		total += len(matches)
		fmt.Printf("\nquery on topic %2d: %d results, %d on-topic\n", topic, len(matches), onTopic)
		fmt.Printf("  hops=%d  nodes=%d  response=%v  bandwidth=%dB query + %dB results\n",
			stats.Hops, stats.IndexNodes, stats.ResponseTime, stats.QueryBytes, stats.ResultBytes)
		for i, m := range matches {
			if i >= 3 {
				break
			}
			fmt.Printf("  #%d doc %4d (topic %2d) angle %.3f rad\n", i+1, m.ID, topicOf[m.ID], m.Distance)
		}
	}
	fmt.Printf("\noverall topical precision: %d/%d = %.2f\n", hits, total, float64(hits)/float64(total))
}
