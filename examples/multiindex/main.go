// Multiindex: several index schemes — over different data types —
// sharing ONE overlay, the architecture's headline feature, plus the
// two load-balancing mechanisms of §3.4.
//
// Three indexes coexist without any per-index routing structures:
// image feature vectors (L2), documents (cosine angle), and DNA
// sequences (edit distance). Per-index rotation offsets spread each
// scheme's hot region to a different part of the ring, and dynamic
// load migration evens out whatever skew remains.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"landmarkdht"
)

func main() {
	rng := rand.New(rand.NewSource(31))
	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 96, Seed: 31})
	if err != nil {
		log.Fatal(err)
	}

	// --- Index 1: image feature vectors under L2. -------------------
	features := make([]landmarkdht.Vector, 3000)
	for i := range features {
		v := make(landmarkdht.Vector, 12)
		base := float64(rng.Intn(3)) * 30
		for j := range v {
			v[j] = base + rng.NormFloat64()*3
		}
		features[i] = v
	}
	images, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("images", 12, -20, 100),
		features, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 6})
	if err != nil {
		log.Fatal(err)
	}

	// --- Index 2: documents under the cosine angle. ------------------
	docs := make([]landmarkdht.SparseVector, 2000)
	for i := range docs {
		n := 20 + rng.Intn(60)
		idx := make([]uint32, n)
		val := make([]float64, n)
		block := uint32(rng.Intn(5)) * 2000
		for j := range idx {
			idx[j] = block + uint32(rng.Intn(2000))
			val[j] = 1 + rng.Float64()*3
		}
		sv, err := landmarkdht.NewSparseVector(idx, val)
		if err != nil {
			log.Fatal(err)
		}
		docs[i] = sv
	}
	library, err := landmarkdht.AddIndex(p, landmarkdht.CosineSpace("library"),
		docs, landmarkdht.SparseMean,
		landmarkdht.IndexOptions{Landmarks: 8, SampleSize: 800})
	if err != nil {
		log.Fatal(err)
	}

	// --- Index 3: DNA sequences under edit distance. -----------------
	seqs := make([]string, 1500)
	roots := make([]string, 4)
	for i := range roots {
		b := make([]byte, 50)
		for j := range b {
			b[j] = "ACGT"[rng.Intn(4)]
		}
		roots[i] = string(b)
	}
	for i := range seqs {
		src := []byte(roots[rng.Intn(4)])
		for j := range src {
			if rng.Float64() < 0.05 {
				src[j] = "ACGT"[rng.Intn(4)]
			}
		}
		seqs[i] = string(src)
	}
	genes, err := landmarkdht.AddIndex(p, landmarkdht.EditSpace("genes", 100),
		seqs, nil, landmarkdht.IndexOptions{Landmarks: 4, Selection: landmarkdht.KMedoidsSelection})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("one overlay (%d nodes), three simultaneous indexes: %v\n",
		p.Nodes(), p.Indexes())
	loads := p.Loads()
	fmt.Printf("combined load before balancing: max=%d entries on the hottest node\n", loads[0])

	// §3.4 dynamic load migration.
	if err := p.EnableLoadBalancing(landmarkdht.LBConfig{
		Delta: 0.25, ProbeLevel: 3, Period: 2 * time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	p.Run(90 * time.Second)
	migrations, aborted := p.Migrations()
	loads = p.Loads()
	fmt.Printf("after %d migrations (%d aborted): max=%d entries\n",
		migrations, aborted, loads[0])

	// All three indexes keep answering exactly — queries route through
	// the same DHT links with no per-index structures.
	imgHits, _, err := images.RangeSearch(features[0], 8)
	if err != nil {
		log.Fatal(err)
	}
	docHits, _, err := library.NearestSearch(docs[0], 5, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	dnaHits, _, err := genes.RangeSearch(seqs[0], 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nqueries after balancing:\n")
	fmt.Printf("  images: %d within L2 distance 8 of feature[0]\n", len(imgHits))
	fmt.Printf("  library: top-%d similar documents to doc[0] (best angle %.3f)\n",
		len(docHits), docHits[0].Distance)
	fmt.Printf("  genes: %d sequences within 6 edits of seq[0]\n", len(dnaHits))
}
