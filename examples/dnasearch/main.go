// Dnasearch: similar-sequence search in a distributed genetics
// database under edit distance (§2 example 1 of the paper).
//
// The metric space of strings has no coordinates and no centroids —
// exactly the "black box distance" setting the architecture targets.
// Landmarks are selected with the greedy max-min method directly from
// the sequence sample.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"landmarkdht"
)

const (
	families = 6
	seqLen   = 80
	nSeqs    = 2000
)

var alphabet = []byte("ACGT")

func mutate(rng *rand.Rand, s string, rate float64) string {
	var out []byte
	for i := 0; i < len(s); i++ {
		if rng.Float64() >= rate {
			out = append(out, s[i])
			continue
		}
		switch rng.Intn(3) {
		case 0:
			out = append(out, alphabet[rng.Intn(4)]) // substitution
		case 1:
			out = append(out, alphabet[rng.Intn(4)], s[i]) // insertion
		case 2: // deletion
		}
	}
	if len(out) == 0 {
		out = append(out, alphabet[rng.Intn(4)])
	}
	return string(out)
}

func main() {
	rng := rand.New(rand.NewSource(23))

	// Ancestral sequences and mutated descendants.
	ancestors := make([]string, families)
	for i := range ancestors {
		b := make([]byte, seqLen)
		for j := range b {
			b[j] = alphabet[rng.Intn(4)]
		}
		ancestors[i] = string(b)
	}
	seqs := make([]string, nSeqs)
	family := make([]int, nSeqs)
	for i := range seqs {
		f := rng.Intn(families)
		family[i] = f
		seqs[i] = mutate(rng, ancestors[f], 0.04)
	}

	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 64, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EditSpace("genebank", seqLen*2), seqs, nil,
		landmarkdht.IndexOptions{
			Landmarks:  6,
			Selection:  landmarkdht.GreedySelection, // Algorithm 1
			SampleSize: 400,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d sequences from %d families on %d nodes\n",
		ix.Len(), families, p.Nodes())
	fmt.Println("landmark sequences (greedy max-min):")
	for i, l := range ix.Landmarks() {
		fmt.Printf("  L%d %s...\n", i, l[:24])
	}

	// Query: a freshly mutated probe must find its relatives.
	for trial := 0; trial < 3; trial++ {
		f := rng.Intn(families)
		probe := mutate(rng, ancestors[f], 0.03)
		matches, stats, err := ix.RangeSearch(probe, 14)
		if err != nil {
			log.Fatal(err)
		}
		sameFamily := 0
		for _, m := range matches {
			if family[m.ID] == f {
				sameFamily++
			}
		}
		fmt.Printf("\nprobe from family %d: %d sequences within 14 edits (%d same family)\n",
			f, len(matches), sameFamily)
		fmt.Printf("  hops=%d  candidates=%d  response=%v\n",
			stats.Hops, stats.Candidates, stats.ResponseTime)
		for i, m := range matches {
			if i >= 3 {
				break
			}
			fmt.Printf("  #%d seq %4d family %d  edit distance %.0f\n",
				i+1, m.ID, family[m.ID], m.Distance)
		}
	}
}
