// Quickstart: index clustered vectors on a simulated 128-node overlay
// and run range and nearest-neighbor searches.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"landmarkdht"
)

func main() {
	// A simulated 128-node Chord overlay with King-like latencies.
	p, err := landmarkdht.New(landmarkdht.Options{Nodes: 128, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// A toy dataset: 5,000 points in 16 dimensions, four clusters.
	rng := rand.New(rand.NewSource(7))
	centers := make([]landmarkdht.Vector, 4)
	for i := range centers {
		c := make(landmarkdht.Vector, 16)
		for j := range c {
			c[j] = rng.Float64() * 100
		}
		centers[i] = c
	}
	data := make([]landmarkdht.Vector, 5000)
	for i := range data {
		c := centers[rng.Intn(len(centers))]
		v := make(landmarkdht.Vector, 16)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*4
		}
		data[i] = v
	}

	// Deploy a landmark index: k-means selects 8 landmark points, the
	// index space is partitioned onto the ring, and every object is
	// placed on its responsible node.
	ix, err := landmarkdht.AddIndex(p,
		landmarkdht.EuclideanSpace("quickstart", 16, -50, 150),
		data, landmarkdht.DenseMean,
		landmarkdht.IndexOptions{Landmarks: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d vectors on %d nodes with %d landmarks\n",
		ix.Len(), p.Nodes(), len(ix.Landmarks()))

	// Exact range search: everything within distance 10 of a query.
	q := data[0]
	matches, stats, err := ix.RangeSearch(q, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrange search (r=10): %d matches\n", len(matches))
	fmt.Printf("  hops=%d  response=%v  max-latency=%v\n",
		stats.Hops, stats.ResponseTime, stats.MaxLatency)
	fmt.Printf("  query: %d msgs / %d bytes;  results: %d msgs / %d bytes\n",
		stats.QueryMessages, stats.QueryBytes, stats.ResultMessages, stats.ResultBytes)

	// Exact 5 nearest neighbors via iterative range expansion.
	nn, _, err := ix.NearestK(q, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 nearest neighbors:")
	for _, m := range nn {
		fmt.Printf("  object %4d at distance %.3f\n", m.ID, m.Distance)
	}

	// Insert a new object through the overlay and find it again.
	novel := make(landmarkdht.Vector, 16)
	for j := range novel {
		novel[j] = 120
	}
	id, err := ix.Insert(novel)
	if err != nil {
		log.Fatal(err)
	}
	got, _, err := ix.RangeSearch(novel, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ninserted object %d; self-search found %d match(es)\n", id, len(got))

	tr := p.Traffic()
	fmt.Printf("\ntotal overlay traffic: %d messages, %d bytes\n", tr.Messages, tr.Bytes)
}
