package landmarkdht

import (
	"math/rand"
	"testing"
)

func TestReindexWithNewLandmarks(t *testing.T) {
	p, ix, data := buildIndex(t, 1000)
	// Hand-picked landmarks far from the originals.
	newLms := []Vector{data[1], data[100], data[500]}
	trBefore := p.Traffic()
	if err := ix.ReindexWith(newLms, nil); err != nil {
		t.Fatal(err)
	}
	trAfter := p.Traffic()
	if trAfter.Bytes <= trBefore.Bytes {
		t.Fatal("reindex migration traffic not charged")
	}
	if len(ix.Landmarks()) != 3 {
		t.Fatalf("landmarks = %d", len(ix.Landmarks()))
	}
	// Entry conservation and exactness after reindexing.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		q := data[rng.Intn(len(data))]
		r := 5 + rng.Float64()*10
		matches, _, err := ix.RangeSearch(q, r)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for _, v := range data {
			if L2(q, v) <= r {
				want++
			}
		}
		if len(matches) != want {
			t.Fatalf("post-reindex search: got %d, want %d", len(matches), want)
		}
	}
}

func TestReindexValidation(t *testing.T) {
	_, ix, _ := buildIndex(t, 100)
	if err := ix.ReindexWith(nil, nil); err == nil {
		t.Fatal("expected error for empty landmark set")
	}
}

func TestReindexUnboundedNeedsSample(t *testing.T) {
	p, _ := New(Options{Nodes: 16, Seed: 4})
	data := testData(200, 4, 9)
	ix, err := AddIndex(p, Space[Vector]{Name: "raw", Dist: L2}, data, DenseMean,
		IndexOptions{Landmarks: 3, SampleSize: 100, BoundaryFromSample: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ReindexWith([]Vector{data[0], data[1]}, nil); err == nil {
		t.Fatal("expected error: unbounded metric without a boundary sample")
	}
	if err := ix.ReindexWith([]Vector{data[0], data[1]}, data[:50]); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ix.RangeSearch(data[0], 3); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshLandmarksThreshold(t *testing.T) {
	_, ix, data := buildIndex(t, 800)
	// An absurd threshold: no refresh can beat it.
	adopted, err := ix.RefreshLandmarks(1000)
	if err != nil {
		t.Fatal(err)
	}
	if adopted {
		t.Fatal("refresh adopted despite impossible threshold")
	}
	// A permissive threshold: some fresh sample should eventually win
	// (negative threshold accepts any strictly positive spread ratio).
	adoptedAny := false
	for i := 0; i < 5 && !adoptedAny; i++ {
		adoptedAny, err = ix.RefreshLandmarks(-0.9)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !adoptedAny {
		t.Skip("no fresh sample beat the incumbent (seed-dependent)")
	}
	// Searches remain exact after adoption.
	q := data[5]
	matches, _, err := ix.RangeSearch(q, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, v := range data {
		if L2(q, v) <= 10 {
			want++
		}
	}
	if len(matches) != want {
		t.Fatalf("post-refresh search: got %d, want %d", len(matches), want)
	}
}
