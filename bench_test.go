package landmarkdht

// One benchmark per table and figure of the paper's evaluation (§4),
// plus the DESIGN.md ablations. Each iteration regenerates the full
// experiment at BenchScale — a reduced size that preserves the
// qualitative shapes. Run the paper-scale versions with:
//
//	go run ./cmd/lmsim -exp all -scale paper
//
// Custom metrics expose the headline numbers (mean recall, max load)
// so regressions in reproduction quality show up in benchmark diffs.

import (
	"testing"

	"landmarkdht/internal/harness"
)

func benchScale() harness.Scale { return harness.BenchScale() }

func meanRecall(cells []harness.Cell) float64 {
	if len(cells) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cells {
		sum += c.Recall
	}
	return sum / float64(len(cells))
}

func BenchmarkTable1DatasetGeneration(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.BuildSynthetic(scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2CorpusStats(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := harness.Table2(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Stats.P50), "median-size")
		b.ReportMetric(st.Stats.Mean, "mean-size")
	}
}

func BenchmarkFigure2NoLB(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Figure2(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanRecall(cells), "mean-recall")
	}
}

func BenchmarkFigure3WithLB(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Figure3(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanRecall(cells), "mean-recall")
	}
}

func BenchmarkFigure4LoadDistribution(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := harness.Figure4(scale)
		if err != nil {
			b.Fatal(err)
		}
		maxLoad := 0
		for _, c := range curves {
			if len(c.Loads) > 0 && c.Loads[0] > maxLoad {
				maxLoad = c.Loads[0]
			}
		}
		b.ReportMetric(float64(maxLoad), "max-load")
	}
}

func BenchmarkFigure5TRECSubstitute(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.Figure5(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanRecall(cells), "mean-recall")
	}
}

func BenchmarkFigure6TRECLoadDistribution(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := harness.Figure6(scale)
		if err != nil {
			b.Fatal(err)
		}
		// The paper's point: greedy stays skewed, k-means evens out.
		for _, c := range curves {
			if len(c.Loads) > 0 {
				b.ReportMetric(float64(c.Loads[0]), c.Scheme+"-max")
			}
		}
	}
}

func BenchmarkAblationRotation(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationRotation(scale, 3)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res[0].CombinedMax), "unrotated-max")
		b.ReportMetric(float64(res[1].CombinedMax), "rotated-max")
	}
}

func BenchmarkAblationNaive(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.AblationNaive(scale)
		if err != nil {
			b.Fatal(err)
		}
		var treeMsgs, naiveMsgs float64
		half := len(cells) / 2
		for i, c := range cells {
			if i < half {
				treeMsgs += c.QueryMsgs.Mean
			} else {
				naiveMsgs += c.QueryMsgs.Mean
			}
		}
		b.ReportMetric(treeMsgs/float64(half), "tree-msgs")
		b.ReportMetric(naiveMsgs/float64(half), "naive-msgs")
	}
}

func BenchmarkAblationLB(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationLB(scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationK(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := harness.AblationK(scale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChurn(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.AblationChurn(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Cell.Recall, "no-churn-recall")
		b.ReportMetric(cells[len(cells)-1].Cell.Recall, "harsh-churn-recall")
	}
}

func BenchmarkAblationPNS(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.AblationPNS(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].RespMs.Mean, "pns-on-resp-ms")
		b.ReportMetric(cells[1].RespMs.Mean, "pns-off-resp-ms")
	}
}

// BenchmarkPublicAPISearch measures a single end-to-end range search
// through the public facade. The index build happens before the timer
// reset, and a warm-up search runs first so lazily grown scratch
// buffers (query center, scan candidates) are excluded; the custom
// results/op metric therefore reflects timed searches only, not setup.
func BenchmarkPublicAPISearch(b *testing.B) {
	p, err := New(Options{Nodes: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	data := testDataForBench(4000, 8, 2)
	ix, err := AddIndex(p, EuclideanSpace("bench", 8, -100, 200), data, DenseMean,
		IndexOptions{Landmarks: 5, SampleSize: 300})
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := ix.RangeSearch(data[0], 10); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var results int
	for i := 0; i < b.N; i++ {
		objs, _, err := ix.RangeSearch(data[i%len(data)], 10)
		if err != nil {
			b.Fatal(err)
		}
		results += len(objs)
	}
	b.ReportMetric(float64(results)/float64(b.N), "results/op")
}

func testDataForBench(n, dim int, seed int64) []Vector {
	return testData(n, dim, seed)
}

func BenchmarkAblationMapping(b *testing.B) {
	scale := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells, err := harness.AblationMapping(scale)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].NodesTouched.Mean, "morton-nodes")
		b.ReportMetric(cells[1].NodesTouched.Mean, "hilbert-nodes")
	}
}
