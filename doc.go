// Package landmarkdht is a reproduction of "A Landmark-based Index
// Architecture for General Similarity Search in Peer-to-Peer Networks"
// (Yang & Hu, IPDPS 2007): a distributed similarity-search index built
// on top of a Chord overlay.
//
// Any dataset with a black-box metric distance function can be
// indexed: objects are embedded into a k-dimensional index space by
// their distances to k pre-selected landmark objects, the index space
// is partitioned onto the ring with a locality-preserving k-d hash,
// and near-neighbor queries become multidimensional range queries
// resolved by a recursive split-and-refine routing algorithm that
// reuses the trees embedded in the DHT links. Static (per-index
// rotation) and dynamic (load migration) balancing keep nodes evenly
// loaded, and several independent index schemes — over different data
// types — can share one overlay with no extra routing state.
//
// The overlay is simulated: a deterministic discrete-event engine
// drives packet-level message exchange over a King-style latency
// model, which is how the paper evaluates the system. The public API
// wraps that simulation as a library:
//
//	p, _ := landmarkdht.New(landmarkdht.Options{Nodes: 256, Seed: 1})
//	ix, _ := landmarkdht.AddIndex(p, landmarkdht.EuclideanSpace("vecs", dim, 0, 100),
//	        data, landmarkdht.DenseMean, landmarkdht.IndexOptions{})
//	matches, stats, _ := ix.RangeSearch(query, 25)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of every table and figure in the paper's evaluation.
package landmarkdht
