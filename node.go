package landmarkdht

import (
	"time"

	"landmarkdht/internal/runtime/netrt"
)

// NodeOptions configures one deployable ring node: a real OS process
// serving the landmark index over TCP (see cmd/lmnode). Unlike
// Options — which boots a whole simulated or live in-process overlay —
// a Node is one member of a multi-process ring: every process rebuilds
// the same deterministic corpus from the shared Seed/Metric parameters
// and serves exactly the entries it owns under the current membership.
type NodeOptions struct {
	// Listen is the TCP listen address ("127.0.0.1:0" picks a port).
	// The node's ring identity derives from the bound address, so a
	// process restarted on the same explicit address resumes its ring
	// position and ownership.
	Listen string
	// Join lists peer addresses to bootstrap from. Empty starts a new
	// ring.
	Join []string
	// Seed pins the deterministic corpus; it must match across the
	// ring (the handshake refuses peers built from a different one).
	Seed int64
	// Metric selects the corpus: "euclid" (default) or "edit".
	Metric string
	// Objects, Dim, Landmarks size the corpus (defaults 2048, 4, 6).
	Objects   int
	Dim       int
	Landmarks int
	// DataDir, when set, makes the node's state durable: the corpus is
	// journaled to this directory on first boot, and a process
	// restarted on the same Listen address recovers it from the WAL
	// instead of regenerating it. Each node needs its own directory.
	DataDir string
	// Deadline bounds each query; on expiry it finishes incomplete
	// with the results gathered so far (default 5s).
	Deadline time.Duration
	// GossipPeriod is the membership anti-entropy interval (default
	// 500ms).
	GossipPeriod time.Duration
	// Replicas is how many ring successors hold a streamed copy of this
	// node's region (default 0: no replication). With Replicas ≥ 1 the
	// ring keeps answering Complete and exact for a dead member's region
	// once the failure detector marks it down: its shards are answered
	// from the synced copies. Every member should use the same value.
	Replicas int
	// Faults injects frame drops and connection kills into the node's
	// peer links — the same policy knobs as Options.Faults, applied at
	// the TCP transport.
	Faults *FaultOptions
	// Logf, when set, receives one line per membership and link event.
	Logf func(format string, args ...any)
}

// Node is one running ring member. Start it with StartNode, query it
// from any goroutine, and Close it when done. Remote processes reach
// it over TCP via DialNode or cmd/lmnode's peers.
type Node struct {
	inner *netrt.Node
}

// NodeResult is one finished node query. Complete means the answer is
// the exact range-query result over the corpus; otherwise Entries is
// an honest subset and Dropped counts the region shards lost for good.
type NodeResult = netrt.QueryOutcome

// NodeEntry is one matching object in a NodeResult.
type NodeEntry = netrt.ResultEntry

// NodeStats aggregates a node's link-layer counters.
type NodeStats = netrt.LinkStats

// StartNode builds the corpus, binds the listener, joins the ring, and
// returns the running node.
func StartNode(opts NodeOptions) (*Node, error) {
	inner, err := netrt.Start(netrt.Config{
		Listen: opts.Listen,
		Join:   opts.Join,
		Data: netrt.DataConfig{
			Metric:    opts.Metric,
			Seed:      opts.Seed,
			Objects:   opts.Objects,
			Dim:       opts.Dim,
			Landmarks: opts.Landmarks,
		},
		DataDir:      opts.DataDir,
		Deadline:     opts.Deadline,
		GossipPeriod: opts.GossipPeriod,
		Replicas:     opts.Replicas,
		Faults:       opts.Faults,
		Logf:         opts.Logf,
	})
	if err != nil {
		return nil, err
	}
	return &Node{inner: inner}, nil
}

// ID returns the node's ring identity.
func (n *Node) ID() uint64 { return n.inner.ID() }

// Addr returns the bound listen address.
func (n *Node) Addr() string { return n.inner.Addr() }

// Recovered reports whether the node restored its corpus from DataDir
// (true only after a restart; a first boot builds and persists).
func (n *Node) Recovered() bool { return n.inner.Recovered() }

// Stats snapshots the node's link layer.
func (n *Node) Stats() NodeStats { return n.inner.Stats() }

// Reliability maps the node's link-layer counters into the platform's
// ReliabilityStats shape: sheds from the bounded per-link send queues,
// the instantaneous queued-frame depth, and link re-dials. The
// query-layer counters (retries, hedges, admission) stay zero here —
// a deployed node reports those per query in NodeResult.
func (n *Node) Reliability() ReliabilityStats {
	s := n.inner.Stats()
	return ReliabilityStats{
		TransportShed:  s.Shed,
		QueueDepth:     s.Queued,
		Reconnects:     s.Redials,
		ReplicaRepairs: s.Repairs,
		RepairChunks:   s.RepairChunks,
		RepairFallback: s.RepairFallback,
	}
}

// Close shuts the node down: listener, client connections, peer links,
// and the protocol executor.
func (n *Node) Close() { n.inner.Close() }

// QueryVector runs one range query with a vector query object against
// the ring ("euclid" corpus). Safe from any goroutine.
func (n *Node) QueryVector(q Vector, r float64, timeout time.Duration) (NodeResult, error) {
	return n.inner.Query(netrt.EncodeVectorQuery(q), r, timeout)
}

// QueryString runs one range query with a string query object against
// the ring ("edit" corpus). Safe from any goroutine.
func (n *Node) QueryString(q string, r float64, timeout time.Duration) (NodeResult, error) {
	return n.inner.Query(netrt.EncodeStringQuery(q), r, timeout)
}

// PublishVector inserts one vector object under id ("euclid" corpus).
// The mutation routes to the owner of the object's ring key, is
// journaled when the owner is durable, and fans out to the owner's
// replicas; id must not collide with the deterministic boot corpus.
func (n *Node) PublishVector(id int32, v Vector, timeout time.Duration) error {
	return n.inner.Publish(id, netrt.EncodeVectorQuery(v), timeout)
}

// PublishString inserts one string object under id ("edit" corpus).
func (n *Node) PublishString(id int32, s string, timeout time.Duration) error {
	return n.inner.Publish(id, netrt.EncodeStringQuery(s), timeout)
}

// DeleteID tombstones one boot-corpus entry by id.
func (n *Node) DeleteID(id int32, timeout time.Duration) error {
	return n.inner.Delete(id, nil, timeout)
}

// DeleteVector removes a published vector entry (the object bytes
// re-derive the ring key the delete routes by).
func (n *Node) DeleteVector(id int32, v Vector, timeout time.Duration) error {
	return n.inner.Delete(id, netrt.EncodeVectorQuery(v), timeout)
}

// DeleteString removes a published string entry.
func (n *Node) DeleteString(id int32, s string, timeout time.Duration) error {
	return n.inner.Delete(id, netrt.EncodeStringQuery(s), timeout)
}

// NodeClient is a TCP connection to a ring node's client port; it runs
// queries on a node owned by another process. Safe for concurrent use.
type NodeClient = netrt.Client

// NodeInfo is a node's self-description, from NodeClient.Info.
type NodeInfo = netrt.Info

// DialNode connects to a running node (typically a cmd/lmnode
// process) and completes the client handshake.
func DialNode(addr string, timeout time.Duration) (*NodeClient, error) {
	return netrt.Dial(addr, timeout)
}
